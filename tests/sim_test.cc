// Unit tests for the coroutine discrete-event simulator: tasks, time,
// sync primitives, resources, queues, energy accounting, determinism.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/energy.h"
#include "sim/resource.h"
#include "sim/sim_queue.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace bionicdb::sim {
namespace {

// ------------------------------------------------------------ Scheduling --

TEST(SimulatorTest, StartsAtZeroAndAdvances) {
  Simulator sim;
  SimTime seen = -1;
  sim.Spawn([](Simulator* s, SimTime* out) -> Task<> {
    co_await Delay{s, 100};
    *out = s->Now();
  }(&sim, &seen));
  EXPECT_EQ(sim.Now(), 0);
  sim.Run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, ZeroDelayDoesNotSuspendForever) {
  Simulator sim;
  int steps = 0;
  sim.Spawn([](Simulator* s, int* steps) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await Delay{s, 0};
      ++(*steps);
    }
  }(&sim, &steps));
  sim.Run();
  EXPECT_EQ(steps, 5);
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, EventsAtSameTimeFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn([](Simulator* s, std::vector<int>* order, int id) -> Task<> {
      co_await Delay{s, 50};
      order->push_back(id);
    }(&sim, &order, i));
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, NestedTaskAwaitPropagatesValue) {
  Simulator sim;
  int result = 0;
  sim.Spawn([](Simulator* s, int* out) -> Task<> {
    auto child = [](Simulator* s) -> Task<int> {
      co_await Delay{s, 10};
      co_return 41;
    };
    int v = co_await child(s);
    *out = v + 1;
  }(&sim, &result));
  sim.Run();
  EXPECT_EQ(result, 42);
}

TEST(SimulatorTest, DeeplyNestedTasks) {
  Simulator sim;
  // 3-level chain: grandparent awaits parent awaits child.
  int64_t total = 0;
  sim.Spawn([](Simulator* s, int64_t* total) -> Task<> {
    auto child = [](Simulator* s) -> Task<int64_t> {
      co_await Delay{s, 7};
      co_return s->Now();
    };
    auto parent = [child](Simulator* s) -> Task<int64_t> {
      int64_t t = co_await child(s);
      co_await Delay{s, 3};
      co_return t + s->Now();
    };
    *total = co_await parent(s);
  }(&sim, &total));
  sim.Run();
  EXPECT_EQ(total, 7 + 10);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int ticks = 0;
  sim.Spawn([](Simulator* s, int* ticks) -> Task<> {
    for (int i = 0; i < 100; ++i) {
      co_await Delay{s, 10};
      ++(*ticks);
    }
  }(&sim, &ticks));
  bool drained = sim.RunUntil(55);
  EXPECT_FALSE(drained);
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.Now(), 55);
  // Continue to completion.
  drained = sim.RunUntil(10000);
  EXPECT_TRUE(drained);
  EXPECT_EQ(ticks, 100);
}

// Pins the RunUntil deadline contract documented in sim/simulator.h.
TEST(SimulatorTest, RunUntilDeadlineSemantics) {
  Simulator sim;
  int ticks = 0;
  sim.Spawn([](Simulator* s, int* ticks) -> Task<> {
    for (int i = 0; i < 3; ++i) {
      co_await Delay{s, 10};
      ++(*ticks);
    }
  }(&sim, &ticks));

  // An event at exactly the deadline fires (inclusive boundary).
  EXPECT_FALSE(sim.RunUntil(10));
  EXPECT_EQ(ticks, 1);
  EXPECT_EQ(sim.Now(), 10);

  // Draining early still lands the clock on the deadline, so back-to-back
  // windows tile virtual time without gaps.
  EXPECT_TRUE(sim.RunUntil(1000));
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(sim.Now(), 1000);

  // A deadline in the past processes nothing and never rewinds the clock.
  EXPECT_TRUE(sim.RunUntil(500));
  EXPECT_EQ(sim.Now(), 1000);

  // An empty queue at a future deadline just advances the clock.
  EXPECT_TRUE(sim.RunUntil(2000));
  EXPECT_EQ(sim.Now(), 2000);
  EXPECT_EQ(sim.live_tasks(), 0u);
}

// Events scheduled for the same instant from very different distances land
// in different timer wheels (coarse for the early long delay, fine for the
// late short one) yet must still fire in schedule order.
TEST(SimulatorTest, EqualTimestampsAcrossWheelsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  constexpr SimTime kMeet = 70000;  // wheel 2 territory from t=0
  auto arrive = [](Simulator* s, std::vector<int>* order, SimTime at,
                   int id) -> Task<> {
    co_await DelayUntil{s, at};
    order->push_back(id);
  };
  sim.Spawn(arrive(&sim, &order, kMeet, 0));  // scheduled first, from afar
  sim.Spawn([](Simulator* s, std::vector<int>* order,
               decltype(arrive) arrive) -> Task<> {
    co_await Delay{s, kMeet - 100};  // get close, then schedule late
    s->Spawn(arrive(s, order, kMeet, 1));
    s->Spawn(arrive(s, order, kMeet, 2));
  }(&sim, &order, arrive));
  sim.Run();
  EXPECT_EQ(sim.Now(), kMeet);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, LiveTaskCountTracksSpawns) {
  Simulator sim;
  EXPECT_EQ(sim.live_tasks(), 0u);
  sim.Spawn([](Simulator* s) -> Task<> { co_await Delay{s, 5}; }(&sim));
  sim.Spawn([](Simulator* s) -> Task<> { co_await Delay{s, 9}; }(&sim));
  EXPECT_EQ(sim.live_tasks(), 2u);
  sim.Run();
  EXPECT_EQ(sim.live_tasks(), 0u);
}

TEST(SimulatorTest, DeterministicEventCounts) {
  auto run = []() {
    Simulator sim;
    sim.SeedRng(77);
    for (int i = 0; i < 10; ++i) {
      sim.Spawn([](Simulator* s, int n) -> Task<> {
        for (int j = 0; j < n; ++j) {
          co_await Delay{s, static_cast<SimTime>(s->rng().Uniform(100) + 1)};
        }
      }(&sim, i + 1));
    }
    sim.Run();
    return std::pair{sim.Now(), sim.events_processed()};
  };
  auto [t1, e1] = run();
  auto [t2, e2] = run();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(e1, e2);
}

// ------------------------------------------------------------------ Sync --

TEST(CondVarTest, NotifyOneWakesFifo) {
  Simulator sim;
  CondVar cv(&sim);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](CondVar* cv, std::vector<int>* woke, int id) -> Task<> {
      co_await cv->Wait();
      woke->push_back(id);
    }(&cv, &woke, i));
  }
  sim.Spawn([](Simulator* s, CondVar* cv) -> Task<> {
    co_await Delay{s, 10};
    cv->NotifyOne();
    co_await Delay{s, 10};
    cv->NotifyAll();
  }(&sim, &cv));
  sim.Run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Simulator sim;
  Semaphore sem(&sim, 2);
  int active = 0, max_active = 0;
  for (int i = 0; i < 6; ++i) {
    sim.Spawn([](Simulator* s, Semaphore* sem, int* active,
                 int* max_active) -> Task<> {
      co_await sem->Acquire();
      ++*active;
      *max_active = std::max(*max_active, *active);
      co_await Delay{s, 100};
      --*active;
      sem->Release();
    }(&sim, &sem, &active, &max_active));
  }
  sim.Run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(sim.Now(), 300);  // 6 jobs, 2 wide, 100ns each
}

TEST(SemaphoreTest, TryAcquireDoesNotJumpQueue) {
  Simulator sim;
  Semaphore sem(&sim, 1);
  bool got_direct = sem.TryAcquire();
  EXPECT_TRUE(got_direct);
  bool waiter_done = false;
  sim.Spawn([](Semaphore* sem, bool* done) -> Task<> {
    co_await sem->Acquire();
    *done = true;
    sem->Release();
  }(&sem, &waiter_done));
  sim.RunUntil(10);
  EXPECT_FALSE(waiter_done);
  EXPECT_FALSE(sem.TryAcquire());  // a waiter exists; no barging
  sem.Release();
  sim.Run();
  EXPECT_TRUE(waiter_done);
}

TEST(CompletionTest, WaitersResumeAfterSet) {
  Simulator sim;
  Completion done(&sim);
  SimTime resumed_at = -1;
  sim.Spawn([](Completion* c, Simulator* s, SimTime* at) -> Task<> {
    co_await c->Wait();
    *at = s->Now();
  }(&done, &sim, &resumed_at));
  sim.Spawn([](Simulator* s, Completion* c) -> Task<> {
    co_await Delay{s, 250};
    c->Set();
  }(&sim, &done));
  sim.Run();
  EXPECT_EQ(resumed_at, 250);
  EXPECT_TRUE(done.done());
}

TEST(CompletionTest, WaitAfterSetIsImmediate) {
  Simulator sim;
  Completion done(&sim);
  done.Set();
  SimTime at = -1;
  sim.Spawn([](Completion* c, Simulator* s, SimTime* at) -> Task<> {
    co_await c->Wait();
    *at = s->Now();
  }(&done, &sim, &at));
  sim.Run();
  EXPECT_EQ(at, 0);
}

// -------------------------------------------------------------- Resources --

TEST(ServerTest, FifoQueueingDelaysExcessRequests) {
  Simulator sim;
  Server server(&sim, 1);
  std::vector<SimTime> finish;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](Simulator* s, Server* srv, std::vector<SimTime>* f) -> Task<> {
      co_await srv->Use(100);
      f->push_back(s->Now());
    }(&sim, &server, &finish));
  }
  sim.Run();
  EXPECT_EQ(finish, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(server.ops(), 3u);
  EXPECT_EQ(server.busy_ns(), 300);
  EXPECT_DOUBLE_EQ(server.Utilization(300), 1.0);
}

TEST(ServerTest, MultiServerRunsInParallel) {
  Simulator sim;
  Server server(&sim, 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn([](Server* srv, int* done) -> Task<> {
      co_await srv->Use(100);
      ++*done;
    }(&server, &done));
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.Now(), 100);  // all four in parallel
}

TEST(LinkTest, BandwidthSerializesLatencyOverlaps) {
  Simulator sim;
  // 1 GB/s == 1 byte/ns; latency 1000ns.
  Link link(&sim, "l", 1.0, 1000);
  std::vector<SimTime> finish;
  for (int i = 0; i < 2; ++i) {
    sim.Spawn([](Simulator* s, Link* l, std::vector<SimTime>* f) -> Task<> {
      co_await l->Transfer(500);  // 500ns serialization
      f->push_back(s->Now());
    }(&sim, &link, &finish));
  }
  sim.Run();
  // First: 500 (wire) + 1000 (latency) = 1500.
  // Second: starts wire at 500, done wire at 1000, arrives 2000.
  EXPECT_EQ(finish, (std::vector<SimTime>{1500, 2000}));
  EXPECT_EQ(link.bytes_transferred(), 1000u);
}

TEST(LinkTest, RoundTripIsTwiceLatency) {
  Simulator sim;
  Link link(&sim, "pcie", 4.0, 1000);
  SimTime t = -1;
  sim.Spawn([](Simulator* s, Link* l, SimTime* t) -> Task<> {
    co_await l->RoundTrip();
    *t = s->Now();
  }(&sim, &link, &t));
  sim.Run();
  EXPECT_EQ(t, 2000);
}

TEST(PipelinedUnitTest, InitiationIntervalThrottlesIssueRate) {
  Simulator sim;
  PipelinedUnit unit(&sim, "u", /*ii=*/10);
  std::vector<SimTime> finish;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](Simulator* s, PipelinedUnit* u,
                 std::vector<SimTime>* f) -> Task<> {
      co_await u->Process(100);
      f->push_back(s->Now());
    }(&sim, &unit, &finish));
  }
  sim.Run();
  // Issues at 0, 10, 20; each completes 100ns after issue.
  EXPECT_EQ(finish, (std::vector<SimTime>{100, 110, 120}));
  EXPECT_EQ(unit.ops(), 3u);
}

TEST(CorePoolTest, OversubscriptionSerializes) {
  Simulator sim;
  CorePool cores(&sim, 2);
  std::vector<SimTime> finish;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn([](Simulator* s, CorePool* c, std::vector<SimTime>* f) -> Task<> {
      co_await c->Attach();
      co_await c->Work(100);
      c->Detach();
      f->push_back(s->Now());
    }(&sim, &cores, &finish));
  }
  sim.Run();
  EXPECT_EQ(finish, (std::vector<SimTime>{100, 100, 200, 200}));
  EXPECT_EQ(cores.busy_ns(), 400);
  EXPECT_DOUBLE_EQ(cores.Utilization(200), 1.0);
}

// ----------------------------------------------------------------- Queue --

TEST(SimQueueTest, PushPopFifo) {
  Simulator sim;
  SimQueue<int> q(&sim, 16);
  std::vector<int> got;
  sim.Spawn([](SimQueue<int>* q, std::vector<int>* got) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      int v = co_await q->Pop();
      got->push_back(v);
    }
  }(&q, &got));
  sim.Spawn([](Simulator* s, SimQueue<int>* q) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      co_await Delay{s, 10};
      co_await q->Push(i);
    }
  }(&sim, &q));
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.pops(), 5u);
}

TEST(SimQueueTest, BackpressureBlocksProducer) {
  Simulator sim;
  SimQueue<int> q(&sim, 2);
  SimTime third_push_at = -1;
  sim.Spawn([](Simulator* s, SimQueue<int>* q, SimTime* at) -> Task<> {
    co_await q->Push(1);
    co_await q->Push(2);
    co_await q->Push(3);  // must wait for a pop
    *at = s->Now();
  }(&sim, &q, &third_push_at));
  sim.Spawn([](Simulator* s, SimQueue<int>* q) -> Task<> {
    co_await Delay{s, 500};
    (void)co_await q->Pop();
  }(&sim, &q));
  sim.Run();
  EXPECT_EQ(third_push_at, 500);
  EXPECT_EQ(q.high_watermark(), 2u);
}

TEST(SimQueueTest, TryOpsDoNotBlock) {
  Simulator sim;
  SimQueue<int> q(&sim, 1);
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_TRUE(q.TryPush(7));
  EXPECT_FALSE(q.TryPush(8));
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
}

TEST(SimQueueTest, MultipleConsumersEachGetOneItem) {
  Simulator sim;
  SimQueue<int> q(&sim, 8);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](SimQueue<int>* q, std::vector<int>* got) -> Task<> {
      int v = co_await q->Pop();
      got->push_back(v);
    }(&q, &got));
  }
  sim.Spawn([](Simulator* s, SimQueue<int>* q) -> Task<> {
    co_await Delay{s, 1};
    co_await q->Push(10);
    co_await q->Push(20);
    co_await q->Push(30);
  }(&sim, &q));
  sim.Run();
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0] + got[1] + got[2], 60);
}

// ---------------------------------------------------------------- Energy --

TEST(EnergyMeterTest, ActiveEnergyIsPowerTimesTime) {
  Simulator sim;
  EnergyMeter meter(&sim);
  int c = meter.RegisterComponent("cpu", PowerSpec{10.0, 1.0, 0.0});
  meter.ChargeBusy(c, 1000);  // 1000ns at 10W = 10000 nJ
  EXPECT_DOUBLE_EQ(meter.ActiveEnergyNj(c), 10000.0);
  EXPECT_EQ(meter.BusyNs(c), 1000);
  EXPECT_EQ(meter.Ops(c), 1u);
}

TEST(EnergyMeterTest, IdleEnergyCoversRemainder) {
  Simulator sim;
  EnergyMeter meter(&sim);
  int c = meter.RegisterComponent("u", PowerSpec{10.0, 2.0, 0.0});
  meter.ChargeBusy(c, 300);
  // Over 1000ns: 300 busy, 700 idle at 2W = 1400 nJ.
  EXPECT_DOUBLE_EQ(meter.IdleEnergyNj(c, 1000), 1400.0);
  EXPECT_DOUBLE_EQ(meter.TotalEnergyNj(1000), 3000.0 + 1400.0);
}

TEST(EnergyMeterTest, PerOpEnergyAdds) {
  Simulator sim;
  EnergyMeter meter(&sim);
  int c = meter.RegisterComponent("u", PowerSpec{0.0, 0.0, 5.0});
  meter.ChargeBusy(c, 0, 10);
  EXPECT_DOUBLE_EQ(meter.ActiveEnergyNj(c), 50.0);
}

TEST(EnergyMeterTest, ParallelismScalesIdleCapacity) {
  Simulator sim;
  EnergyMeter meter(&sim);
  int c = meter.RegisterComponent("cores", PowerSpec{10.0, 1.0, 0.0});
  meter.SetParallelism(c, 4.0);
  meter.ChargeBusy(c, 1000);
  // Capacity over 1000ns = 4000 core-ns; idle = 3000 at 1W.
  EXPECT_DOUBLE_EQ(meter.IdleEnergyNj(c, 1000, 4.0), 3000.0);
}

TEST(EnergyMeterTest, FindComponentByName) {
  Simulator sim;
  EnergyMeter meter(&sim);
  meter.RegisterComponent("a", PowerSpec{});
  int b = meter.RegisterComponent("b", PowerSpec{});
  EXPECT_EQ(meter.FindComponent("b"), b);
  EXPECT_EQ(meter.FindComponent("zzz"), -1);
}

}  // namespace
}  // namespace bionicdb::sim
