// Tests for the extension features: index reorganization (Rebuild),
// overlay space management (capacity + clean eviction), quiescent
// checkpointing, and device failure injection through the engine.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "engine/engine.h"
#include "index/btree.h"
#include "index/codec.h"
#include "sim/simulator.h"
#include "wal/recovery.h"

namespace bionicdb {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::EngineMode;
using index::BTree;
using index::BTreeConfig;
using index::EncodeKeyU64;
using sim::Simulator;
using sim::Task;

// ---------------------------------------------------------- BTree::Rebuild --

TEST(BTreeRebuildTest, RestoresMinimalHeightAfterChurn) {
  BTreeConfig cfg;
  cfg.inner_fanout = 8;
  cfg.leaf_capacity = 8;
  BTree t(cfg);
  for (uint64_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "v" + std::to_string(i)).ok());
  }
  // Hollow the tree: delete 7 of every 8 keys.
  for (uint64_t i = 0; i < 4000; ++i) {
    if (i % 8 != 0) {
      ASSERT_TRUE(t.Delete(EncodeKeyU64(i)).ok());
    }
  }
  const int churned_height = t.height();
  ASSERT_TRUE(t.Rebuild(0.9).ok());
  ASSERT_TRUE(t.CheckInvariants().ok());
  EXPECT_LT(t.height(), churned_height);
  EXPECT_EQ(t.size(), 500u);
  // Contents unchanged.
  for (uint64_t i = 0; i < 4000; i += 8) {
    auto r = t.Get(EncodeKeyU64(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, "v" + std::to_string(i));
  }
  // Iteration order intact.
  uint64_t expect = 0;
  for (auto it = t.Begin(); it.Valid(); it.Next(), expect += 8) {
    EXPECT_EQ(index::DecodeKeyU64(it.key()), expect);
  }
}

TEST(BTreeRebuildTest, EmptyAndTinyTrees) {
  BTree t;
  ASSERT_TRUE(t.Rebuild().ok());
  EXPECT_EQ(t.height(), 1);
  ASSERT_TRUE(t.Insert("only", "v").ok());
  ASSERT_TRUE(t.Rebuild().ok());
  EXPECT_EQ(*t.Get("only"), "v");
  ASSERT_TRUE(t.CheckInvariants().ok());
}

TEST(BTreeRebuildTest, TreeRemainsFullyMutable) {
  BTreeConfig cfg;
  cfg.inner_fanout = 6;
  cfg.leaf_capacity = 6;
  BTree t(cfg);
  for (uint64_t i = 0; i < 500; ++i) ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "a").ok());
  ASSERT_TRUE(t.Rebuild(1.0).ok());  // fully packed: next insert must split
  for (uint64_t i = 500; i < 1000; ++i) {
    ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "b").ok());
  }
  for (uint64_t i = 0; i < 500; ++i) ASSERT_TRUE(t.Delete(EncodeKeyU64(i)).ok());
  ASSERT_TRUE(t.CheckInvariants().ok());
  EXPECT_EQ(t.size(), 500u);
}

TEST(BTreeRebuildTest, RejectsBadFillFactor) {
  BTree t;
  EXPECT_TRUE(t.Rebuild(0.0).IsInvalidArgument());
  EXPECT_TRUE(t.Rebuild(1.5).IsInvalidArgument());
}

// ------------------------------------------------------- overlay capacity --

TEST(OverlayCapacityTest, CleanEntriesEvictFifo) {
  engine::Overlay ov(BTreeConfig{}, /*capacity_entries=*/4);
  for (uint64_t i = 0; i < 8; ++i) {
    ov.InstallClean(EncodeKeyU64(i), "r");
  }
  EXPECT_LE(ov.entries(), 4u);
  EXPECT_EQ(ov.clean_evictions(), 4u);
  // Oldest gone, newest resident.
  EXPECT_TRUE(ov.Get(EncodeKeyU64(0)).status().IsOutOfMemory());
  EXPECT_TRUE(ov.Get(EncodeKeyU64(7)).ok());
}

TEST(OverlayCapacityTest, DirtyEntriesArePinned) {
  engine::Overlay ov(BTreeConfig{}, 3);
  ov.Put(EncodeKeyU64(100), "dirty0");
  ov.Put(EncodeKeyU64(101), "dirty1");
  ov.Put(EncodeKeyU64(102), "dirty2");
  // Installing clean rows cannot evict the dirty ones.
  for (uint64_t i = 0; i < 10; ++i) ov.InstallClean(EncodeKeyU64(i), "c");
  EXPECT_TRUE(ov.Get(EncodeKeyU64(100)).ok());
  EXPECT_TRUE(ov.Get(EncodeKeyU64(101)).ok());
  EXPECT_TRUE(ov.Get(EncodeKeyU64(102)).ok());
  // After a merge the rows become clean and evictable again.
  auto delta = ov.TakeDirty();
  EXPECT_EQ(delta.size(), 3u);
  for (uint64_t i = 20; i < 40; ++i) ov.InstallClean(EncodeKeyU64(i), "c");
  EXPECT_LE(ov.entries(), 3u);
}

TEST(OverlayCapacityTest, EngineReFetchesEvictedRows) {
  // A small overlay thrashes: every read still succeeds via the §5.6
  // abort -> software fetch -> install -> retry path.
  Simulator sim;
  EngineConfig config = EngineConfig::Bionic();
  config.num_partitions = 2;
  config.overlay_capacity = 16;
  Engine engine(&sim, config);
  engine::Table* t = engine.CreateTable("T");
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.LoadRow(t, EncodeKeyU64(i), "row" + std::to_string(i)).ok());
  }
  engine.Start();
  int ok_reads = 0;
  sim.Spawn([](Engine* eng, engine::Table* t, int* ok_reads) -> Task<> {
    for (uint64_t i = 0; i < 200; ++i) {
      Engine::TxnSpec spec;
      Engine::TxnStep step;
      step.table = t;
      step.keys = {EncodeKeyU64(i)};
      step.read_only = true;
      step.fn = [eng, t, i,
                 ok_reads](Engine::ExecContext& ctx) -> sim::Task<Status> {
        auto r = co_await eng->Read(ctx, t, EncodeKeyU64(i));
        if (r.ok() && *r == "row" + std::to_string(i)) ++*ok_reads;
        co_return r.status();
      };
      spec.phases.push_back({std::move(step)});
      (void)co_await eng->Execute(std::move(spec));
    }
    co_await eng->Shutdown();
  }(&engine, t, &ok_reads));
  sim.Run();
  EXPECT_EQ(ok_reads, 200);
  EXPECT_LE(t->overlay()->entries(), 16u);
  EXPECT_GT(t->overlay()->stats().misses, 100u);      // constant thrash
  EXPECT_GT(t->overlay()->clean_evictions(), 100u);
}

// ------------------------------------------------------------- checkpoint --

class MapTarget : public wal::RecoveryTarget {
 public:
  void RedoInsert(uint32_t, Slice k, Slice v) override {
    rows[k.ToString()] = v.ToString();
  }
  void RedoUpdate(uint32_t, Slice k, Slice v) override {
    rows[k.ToString()] = v.ToString();
  }
  void RedoDelete(uint32_t, Slice k) override { rows.erase(k.ToString()); }
  std::map<std::string, std::string> rows;
};

TEST(CheckpointTest, RecoveryReplaysOnlyTheSuffix) {
  Simulator sim;
  EngineConfig config = EngineConfig::Dora();
  config.num_partitions = 2;
  Engine engine(&sim, config);
  engine::Table* t = engine.CreateTable("T");
  ASSERT_TRUE(engine.LoadRow(t, EncodeKeyU64(1), "init").ok());
  engine.Start();

  auto update_txn = [&](uint64_t key, std::string value) {
    Engine::TxnSpec spec;
    Engine::TxnStep step;
    step.table = t;
    step.keys = {EncodeKeyU64(key)};
    Engine* eng = &engine;
    step.fn = [eng, t = t, key,
               value](Engine::ExecContext& ctx) -> sim::Task<Status> {
      co_return co_await eng->Update(ctx, t, EncodeKeyU64(key), value);
    };
    spec.phases.push_back({std::move(step)});
    return spec;
  };

  sim.Spawn([](Engine* eng, decltype(update_txn)* mk) -> Task<> {
    EXPECT_TRUE((co_await eng->Execute((*mk)(1, "before-ckpt"))).ok());
    Engine::ExecContext ctx;
    ctx.engine = eng;
    EXPECT_TRUE((co_await eng->Checkpoint(ctx)).ok());
    EXPECT_TRUE((co_await eng->Execute((*mk)(1, "after-ckpt"))).ok());
    co_await eng->Shutdown();
  }(&engine, &update_txn));
  sim.Run();

  MapTarget target;
  wal::RecoveryStats stats;
  ASSERT_TRUE(
      wal::Recover(engine.log()->durable_prefix(), &target, &stats).ok());
  // Only the post-checkpoint transaction is replayed.
  EXPECT_EQ(stats.committed_txns, 1u);
  ASSERT_EQ(target.rows.size(), 1u);
  EXPECT_EQ(target.rows.begin()->second, "after-ckpt");
  EXPECT_NE(stats.checkpoint_lsn, wal::kInvalidLsn);
  // And the pre-checkpoint effect is already durable in base data.
  EXPECT_EQ(*t->BaseGet(EncodeKeyU64(1)), "after-ckpt");  // merged by ckpt? no:
  // the checkpoint merged "before-ckpt" into base; the post-ckpt update went
  // through the buffer pool (aliased), so base holds the latest value either
  // way; the essential check is above: recovery does not need the prefix.
}

TEST(CheckpointTest, BionicCheckpointMergesOverlays) {
  Simulator sim;
  EngineConfig config = EngineConfig::Bionic();
  config.num_partitions = 2;
  Engine engine(&sim, config);
  engine::Table* t = engine.CreateTable("T");
  ASSERT_TRUE(engine.LoadRow(t, EncodeKeyU64(7), "old").ok());
  engine.Start();
  sim.Spawn([](Engine* eng, engine::Table* t) -> Task<> {
    Engine::TxnSpec spec;
    Engine::TxnStep step;
    step.table = t;
    step.keys = {EncodeKeyU64(7)};
    step.fn = [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
      co_return co_await eng->Update(ctx, t, EncodeKeyU64(7), "new");
    };
    spec.phases.push_back({std::move(step)});
    EXPECT_TRUE((co_await eng->Execute(std::move(spec))).ok());
    EXPECT_EQ(t->overlay()->dirty_count(), 1u);
    Engine::ExecContext ctx;
    ctx.engine = eng;
    EXPECT_TRUE((co_await eng->Checkpoint(ctx)).ok());
    co_await eng->Shutdown();
  }(&engine, t));
  sim.Run();
  EXPECT_EQ(t->overlay()->dirty_count(), 0u);
  EXPECT_EQ(*t->BaseGet(EncodeKeyU64(7)), "new");
}

// ------------------------------------------------------ failure injection --

TEST(FailureInjectionTest, DiskErrorSurfacesAsIOError) {
  Simulator sim;
  EngineConfig config = EngineConfig::Conventional();
  config.bpool_frames = 4;  // tiny pool: evictions force real re-reads
  Engine engine(&sim, config);
  engine::Table* t = engine.CreateTable("T");
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(engine.LoadRow(t, EncodeKeyU64(i), "v").ok());
  }
  auto rid = t->LookupRid(EncodeKeyU64(5));
  ASSERT_TRUE(rid.ok());
  engine.data_disk()->InjectReadError(rid->page_id);

  engine.Start();
  Status first, second;
  sim.Spawn([](Engine* eng, engine::Table* t, Status* first,
               Status* second) -> Task<> {
    auto make = [eng, t](Status* out) {
      Engine::TxnSpec spec;
      Engine::TxnStep step;
      step.table = t;
      step.keys = {EncodeKeyU64(5)};
      step.read_only = true;
      step.fn = [eng, t, out](Engine::ExecContext& ctx) -> sim::Task<Status> {
        auto r = co_await eng->Read(ctx, t, EncodeKeyU64(5));
        *out = r.status();
        co_return r.status();
      };
      spec.phases.push_back({std::move(step)});
      return spec;
    };
    (void)co_await eng->Execute(make(first));
    (void)co_await eng->Execute(make(second));
    co_await eng->Shutdown();
  }(&engine, t, &first, &second));
  sim.Run();
  EXPECT_TRUE(first.IsIOError());   // injected fault propagates cleanly
  EXPECT_TRUE(second.ok());         // and the retry reads real data
  EXPECT_GE(engine.metrics().aborts, 1u);
  EXPECT_GE(engine.metrics().commits, 1u);
}

// ----------------------------------------------------------- determinism --

TEST(EngineDeterminismTest, BionicRunsAreBitIdentical) {
  auto fingerprint = []() {
    Simulator sim;
    EngineConfig config = EngineConfig::Bionic();
    config.num_partitions = 3;
    Engine engine(&sim, config);
    engine::Table* t = engine.CreateTable("T");
    for (uint64_t i = 0; i < 300; ++i) {
      BIONICDB_CHECK(engine.LoadRow(t, EncodeKeyU64(i), "v").ok());
    }
    engine.Start();
    sim.Spawn([](Engine* eng, engine::Table* t) -> Task<> {
      for (uint64_t i = 0; i < 100; ++i) {
        Engine::TxnSpec spec;
        Engine::TxnStep step;
        step.table = t;
        step.keys = {EncodeKeyU64(i * 3 % 300)};
        step.fn = [eng, t, i](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return co_await eng->Update(ctx, t, EncodeKeyU64(i * 3 % 300),
                                         "u" + std::to_string(i));
        };
        spec.phases.push_back({std::move(step)});
        (void)co_await eng->Execute(std::move(spec));
      }
      co_await eng->Shutdown();
    }(&engine, t));
    sim.Run();
    return std::tuple{sim.Now(), sim.events_processed(),
                      engine.log()->current_lsn(),
                      engine.probe_unit()->probes_completed()};
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace bionicdb

namespace bionicdb {
namespace {

// ------------------------------------------------- columnar projections --

class ProjectionTest : public ::testing::TestWithParam<EngineMode> {};

EngineConfig ProjCfg(EngineMode mode) {
  EngineConfig c;
  switch (mode) {
    case EngineMode::kConventional:
      c = EngineConfig::Conventional();
      break;
    case EngineMode::kDora:
      c = EngineConfig::Dora();
      break;
    case EngineMode::kBionic:
      c = EngineConfig::Bionic();
      break;
  }
  c.num_partitions = 2;
  return c;
}

// Rows are 8-byte little-endian ints for these tests.
std::string IntRec(int64_t v) {
  return std::string(reinterpret_cast<const char*>(&v), sizeof(v));
}
int64_t IntOf(Slice rec) {
  int64_t v;
  std::memcpy(&v, rec.data(), sizeof(v));
  return v;
}

TEST_P(ProjectionTest, AggregatesBaseDataAndPatchesOverlay) {
  Simulator sim;
  Engine engine(&sim, ProjCfg(GetParam()));
  engine::Table* t = engine.CreateTable("T");
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        engine.LoadRow(t, EncodeKeyU64(i), IntRec(static_cast<int64_t>(i)))
            .ok());
  }
  ASSERT_TRUE(t->AddColumnarProjection("val", IntOf).ok());
  ASSERT_TRUE(t->AddColumnarProjection("val", IntOf).IsAlreadyExists());

  Engine::ProjectionAggregate all{}, patched{};
  engine.Start();
  sim.Spawn([](Engine* eng, engine::Table* t,
               Engine::ProjectionAggregate* all,
               Engine::ProjectionAggregate* patched) -> Task<> {
    Engine::ExecContext ctx;
    ctx.engine = eng;
    auto r = co_await eng->ScanProjection(ctx, t, "val");
    EXPECT_TRUE(r.ok());
    *all = *r;

    // Update row 10 to 1000 and insert row 200 = 7; the projection is
    // stale but the query must see both through the overlay patch (or the
    // refreshed base for non-overlay engines).
    Engine::TxnSpec spec;
    Engine::TxnStep step;
    step.table = t;
    step.keys = {EncodeKeyU64(10), EncodeKeyU64(200)};
    step.fn = [eng, t](Engine::ExecContext& c) -> sim::Task<Status> {
      Status st = co_await eng->Update(c, t, EncodeKeyU64(10), IntRec(1000));
      if (!st.ok()) co_return st;
      co_return co_await eng->Insert(c, t, EncodeKeyU64(200), IntRec(7));
    };
    spec.phases.push_back({std::move(step)});
    EXPECT_TRUE((co_await eng->Execute(std::move(spec))).ok());

    // Paged engines mutate base directly, so refresh; the bionic engine's
    // delta is patched at query time without a refresh.
    if (!eng->UseOverlay()) t->RefreshProjections();
    auto r2 = co_await eng->ScanProjection(ctx, t, "val");
    EXPECT_TRUE(r2.ok());
    *patched = *r2;
    co_await eng->Shutdown();
  }(&engine, t, &all, &patched));
  sim.Run();

  EXPECT_EQ(all.matches, 100u);
  EXPECT_EQ(all.sum, 99 * 100 / 2);
  EXPECT_EQ(patched.matches, 101u);
  EXPECT_EQ(patched.sum, 99 * 100 / 2 - 10 + 1000 + 7);
}

TEST_P(ProjectionTest, PredicateAndMergeRefresh) {
  Simulator sim;
  Engine engine(&sim, ProjCfg(GetParam()));
  engine::Table* t = engine.CreateTable("T");
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        engine.LoadRow(t, EncodeKeyU64(i), IntRec(static_cast<int64_t>(i)))
            .ok());
  }
  ASSERT_TRUE(t->AddColumnarProjection("val", IntOf).ok());
  engine.Start();
  Engine::ProjectionAggregate big{};
  sim.Spawn([](Engine* eng, engine::Table* t,
               Engine::ProjectionAggregate* big) -> Task<> {
    Engine::ExecContext ctx;
    ctx.engine = eng;
    // Checkpoint (merges overlays) then query with a predicate.
    EXPECT_TRUE((co_await eng->Checkpoint(ctx)).ok());
    auto r = co_await eng->ScanProjection(ctx, t, "val",
                                          [](int64_t v) { return v >= 40; });
    EXPECT_TRUE(r.ok());
    *big = *r;
    co_await eng->Shutdown();
  }(&engine, t, &big));
  sim.Run();
  EXPECT_EQ(big.matches, 10u);
  EXPECT_EQ(big.sum, (40 + 49) * 10 / 2);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ProjectionTest,
                         ::testing::Values(EngineMode::kConventional,
                                           EngineMode::kDora,
                                           EngineMode::kBionic),
                         [](const ::testing::TestParamInfo<EngineMode>& info) {
                           return EngineModeName(info.param);
                         });

// ------------------------------------------------------------- routing --

// Route() must balance even when the incoming hashes are structured: the
// SplitMix64 finalizer avalanches the bits before the modulo. Without it,
// hashes that stride by a multiple of the partition count (as identity
// integer hashes of sequential IDs easily do) all land on one partition.
TEST(RoutingTest, MixedRouteBalancesStructuredHashes) {
  sim::Simulator sim;
  hw::Platform platform(&sim, hw::PlatformSpec::CommodityServer());
  hw::Breakdown bd;
  dora::ExecutorConfig ec;
  ec.num_partitions = 6;
  dora::Executor ex(&platform, ec, nullptr, &bd);

  const int kKeys = 60000;
  const int kParts = ec.num_partitions;
  const double expect = static_cast<double>(kKeys) / kParts;

  // Pathological input: hashes striding by a multiple of num_partitions.
  // A bare modulo maps every single one to partition 0.
  std::vector<int> strided(kParts, 0);
  for (int i = 0; i < kKeys; ++i) {
    strided[ex.Route(static_cast<uint64_t>(i) * 6 * 64)]++;
  }
  for (int p = 0; p < kParts; ++p) {
    EXPECT_GT(strided[p], expect * 0.9) << "partition " << p;
    EXPECT_LT(strided[p], expect * 1.1) << "partition " << p;
  }

  // Real input: FNV-1a over qualified keys, the executor's dispatch hash.
  std::vector<int> real(kParts, 0);
  for (int i = 0; i < kKeys; ++i) {
    const std::string q = "t1:" + EncodeKeyU64(static_cast<uint64_t>(i));
    real[ex.Route(common::HashBytes(q))]++;
  }
  for (int p = 0; p < kParts; ++p) {
    EXPECT_GT(real[p], expect * 0.9) << "partition " << p;
    EXPECT_LT(real[p], expect * 1.1) << "partition " << p;
  }
}

}  // namespace
}  // namespace bionicdb
