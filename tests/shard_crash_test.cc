// Distributed crash-recovery property test: the ShardedCrashHarness
// samples consistent cluster-wide crash points (every shard's durable
// WAL prefix at one virtual instant) under a cross-shard-heavy TATP run,
// then proves that recovery at EVERY point reproduces the committed
// state on each shard and never splits a 2PC transaction — some shards
// committing a branch while others abort it.
//
// Both 2PC crash roles fall out of the cut sweep (see
// workload/sharded_crash.h): cuts before the coordinator's decision
// record exercise presumed abort (prepared_aborted), cuts between the
// decision and a participant's branch commit exercise decision-driven
// redo (prepared_committed). The aggregated recovery stats must show
// both, or the sweep never actually crossed the interesting windows.
#include <gtest/gtest.h>

#include "wal/recovery.h"
#include "workload/sharded_crash.h"

namespace bionicdb::workload {
namespace {

TEST(ShardedCrashTest, EveryConsistentCutRecoversAtomically) {
  ShardedCrashConfig cfg;  // 3 shards, 40% cross-shard, 300 txns
  ShardedCrashHarness harness(cfg);
  ASSERT_GT(harness.run_commits(), 0u);
  ASSERT_GT(harness.run_2pc_commits(), 0u) << "no distributed commits ran";
  ASSERT_GT(harness.samples().size(), 10u) << "too few crash points sampled";

  wal::RecoveryStats agg;
  for (size_t i = 0; i < harness.samples().size(); ++i) {
    const std::string diff = harness.CheckCut(i, &agg);
    ASSERT_EQ(diff, "") << "cut " << i << "/" << harness.samples().size()
                        << ": " << diff;
  }

  // The sweep crossed both 2PC crash windows: coordinator crashes
  // (prepared branches presumed aborted) and participant crashes
  // (prepared branches committed from the surviving decision record).
  EXPECT_GT(agg.prepared_aborted, 0u)
      << "no cut landed between prepare and decision";
  EXPECT_GT(agg.prepared_committed, 0u)
      << "no cut landed between decision and branch commit";
  EXPECT_GT(agg.redo_applied, 0u);
}

/// Same sweep with fan-out disabled: crash windows inside the sequential
/// PR 9 protocol stay covered (it remains reachable as the ablation
/// baseline), and decision-record GC must be cut-safe there too.
TEST(ShardedCrashTest, SequentialProtocolCutsRecoverAtomically) {
  ShardedCrashConfig cfg;
  cfg.fanout = false;
  cfg.txns = 200;
  cfg.seed = 3;
  ShardedCrashHarness harness(cfg);
  ASSERT_GT(harness.run_2pc_commits(), 0u) << "no distributed commits ran";

  wal::RecoveryStats agg;
  for (size_t i = 0; i < harness.samples().size(); ++i) {
    const std::string diff = harness.CheckCut(i, &agg);
    ASSERT_EQ(diff, "") << "cut " << i << "/" << harness.samples().size()
                        << ": " << diff;
  }
  EXPECT_GT(agg.prepared_aborted + agg.prepared_committed, 0u);
  // GC fired during the run, and no cut ever held a forget without every
  // branch commit it implies (CheckCut would have failed the oracle).
  EXPECT_GT(agg.decision_records + agg.forget_records, 0u);
}

TEST(ShardedCrashTest, SamplesAreConsistentAndMonotone) {
  ShardedCrashConfig cfg;
  cfg.txns = 120;
  cfg.seed = 7;
  ShardedCrashHarness harness(cfg);
  const auto& samples = harness.samples();
  ASSERT_GT(samples.size(), 1u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].time, samples[i - 1].time);
    ASSERT_EQ(samples[i].cuts.size(), samples[i - 1].cuts.size());
    // Durable prefixes only grow.
    for (size_t s = 0; s < samples[i].cuts.size(); ++s) {
      EXPECT_GE(samples[i].cuts[s], samples[i - 1].cuts[s]);
    }
  }
}

}  // namespace
}  // namespace bionicdb::workload
