// Tests for the deterministic multi-core experiment runner: full index
// coverage, grid results independent of job count, and — the property the
// sweep benches rely on — engine simulations running on worker threads
// produce results identical to the same configurations run serially.
#include "common/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "workload/crash_harness.h"

namespace bionicdb {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  common::ParallelFor(kN, 8, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, DegenerateCases) {
  int calls = 0;
  common::ParallelFor(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  common::ParallelFor(3, 1, [&](size_t) { ++calls; });  // inline path
  EXPECT_EQ(calls, 3);
  std::atomic<int> par_calls{0};
  common::ParallelFor(2, 64, [&](size_t) { ++par_calls; });  // jobs > n
  EXPECT_EQ(par_calls.load(), 2);
}

TEST(ParallelForTest, RunGridKeepsResultsInIndexOrder) {
  const std::vector<uint64_t> serial =
      common::RunGrid<uint64_t>(64, 1, [](size_t i) { return i * i + 7; });
  const std::vector<uint64_t> parallel =
      common::RunGrid<uint64_t>(64, 8, [](size_t i) { return i * i + 7; });
  EXPECT_EQ(serial, parallel);
}

// Each grid point builds its own Simulator + Engine on a worker thread;
// identical configurations must produce bit-identical simulated results,
// and parallel results must match the serial reference run. This is the
// shared-nothing contract of the sweep runner, exercised end to end.
TEST(ParallelRunnerTest, EngineRunsAreIdenticalAcrossThreads) {
  bench::WorkloadScale scale;
  scale.clients = 8;
  scale.warmup_txns = 200;
  scale.measured_txns = 600;
  scale.tatp_subscribers = 500;
  auto run = [&](size_t) {
    return bench::RunTatpMix(engine::EngineConfig::Dora(), scale);
  };
  const std::vector<bench::RunResult> par = bench::RunSweep(3, run, 3);
  const bench::RunResult ref = run(0);
  for (const bench::RunResult& r : par) {
    EXPECT_EQ(r.txn_per_sec, ref.txn_per_sec);
    EXPECT_EQ(r.uj_per_txn, ref.uj_per_txn);
    EXPECT_EQ(r.p95_latency_us, ref.p95_latency_us);
    EXPECT_EQ(r.commits, ref.commits);
    EXPECT_EQ(r.aborts, ref.aborts);
  }
}

TEST(ParallelRunnerTest, CrashCorpusParallelMatchesSerial) {
  workload::CrashHarnessConfig cfg;
  cfg.mode = engine::EngineMode::kDora;
  cfg.seed = 21;
  cfg.clients = 2;
  cfg.txns = 60;
  cfg.scale = 50;
  workload::CrashHarness harness(cfg);
  const std::vector<size_t>& offsets = harness.record_offsets();
  ASSERT_GE(offsets.size(), 8u);

  std::vector<workload::CrashHarness::CrashPoint> points;
  const size_t stride = offsets.size() / 4;
  for (size_t i = stride; i < offsets.size(); i += stride) {
    points.push_back({offsets[i], workload::TailFault::kCleanCut, 1});
    points.push_back({offsets[i] + 2, workload::TailFault::kZeroFill, 2});
    points.push_back({offsets[i], workload::TailFault::kBitFlip, 3});
  }

  std::vector<std::string> serial;
  for (const auto& p : points) {
    serial.push_back(harness.CheckCrashPoint(p.cut, p.fault, p.seed));
  }
  const std::vector<std::string> parallel =
      harness.CheckCrashPoints(points, 4);
  EXPECT_EQ(parallel, serial);
  for (const std::string& f : parallel) EXPECT_EQ(f, "");
}

}  // namespace
}  // namespace bionicdb
