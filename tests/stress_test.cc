// Long-running integration stress: all three engines drive a mixed TATP +
// TPC-C session with periodic quiescent checkpoints and index
// reorganizations, then the run is audited (money conservation, order-line
// integrity) and recovered from the durable log into a fresh engine, which
// must match the original state exactly.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "engine/engine.h"
#include "sim/simulator.h"
#include "wal/recovery.h"
#include "workload/driver.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"

namespace bionicdb {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::EngineMode;
using sim::Simulator;
using sim::Task;

class StressTest : public ::testing::TestWithParam<EngineMode> {};

EngineConfig StressCfg(EngineMode mode) {
  EngineConfig c;
  switch (mode) {
    case EngineMode::kConventional:
      c = EngineConfig::Conventional();
      break;
    case EngineMode::kDora:
      c = EngineConfig::Dora();
      break;
    case EngineMode::kBionic:
      c = EngineConfig::Bionic();
      break;
  }
  return c;
}

class DbTarget : public wal::RecoveryTarget {
 public:
  explicit DbTarget(engine::Database* db) : db_(db) {}
  void RedoInsert(uint32_t t, Slice k, Slice v) override {
    BIONICDB_CHECK(db_->GetTable(t)->BasePut(k, v).ok());
  }
  void RedoUpdate(uint32_t t, Slice k, Slice v) override {
    BIONICDB_CHECK(db_->GetTable(t)->BasePut(k, v).ok());
  }
  void RedoDelete(uint32_t t, Slice k) override {
    (void)db_->GetTable(t)->BaseDelete(k);
  }

 private:
  engine::Database* db_;
};

TEST_P(StressTest, MixedSessionWithMaintenanceSurvivesAudit) {
  Simulator sim;
  Engine engine(&sim, StressCfg(GetParam()));

  workload::TatpConfig tatp_cfg;
  tatp_cfg.subscribers = 800;
  workload::TatpWorkload tatp(&engine, tatp_cfg);
  ASSERT_TRUE(tatp.Load().ok());

  workload::TpccConfig tpcc_cfg;
  tpcc_cfg.items = 150;
  tpcc_cfg.customers_per_district = 15;
  tpcc_cfg.districts_per_warehouse = 4;
  tpcc_cfg.initial_orders_per_district = 8;
  workload::TpccWorkload tpcc(&engine, tpcc_cfg);
  ASSERT_TRUE(tpcc.Load().ok());

  engine.Start();
  // Session: rounds of (mixed txns, checkpoint, reorg).
  Rng mix_rng(GetParam() == EngineMode::kBionic ? 7u : 8u);
  sim.Spawn([](Engine* eng, workload::TatpWorkload* tatp,
               workload::TpccWorkload* tpcc, Rng* rng) -> Task<> {
    co_await eng->PreheatBufferPool();
    for (int round = 0; round < 4; ++round) {
      // Mixed wave: 150 txns alternating workloads, 4 concurrent clients.
      sim::Completion done(eng->simulator());
      int remaining = 4;
      for (int c = 0; c < 4; ++c) {
        eng->simulator()->Spawn(
            [](Engine* eng, workload::TatpWorkload* tatp,
               workload::TpccWorkload* tpcc, Rng* rng, int n,
               sim::Completion* done, int* remaining) -> Task<> {
              for (int i = 0; i < n; ++i) {
                Engine::TxnSpec spec = rng->Bernoulli(0.5)
                                           ? tatp->NextTransaction()
                                           : tpcc->NextTransaction();
                uint64_t prio = 0;
                for (int a = 0; a < 30; ++a) {
                  Engine::TxnSpec copy = spec;
                  Status st =
                      co_await eng->Execute(std::move(copy), 0, &prio);
                  if (!st.IsAborted()) break;
                  co_await sim::Delay{eng->simulator(),
                                      20000 * (a + 1)};
                }
              }
              if (--*remaining == 0) done->Set();
            }(eng, tatp, tpcc, rng, 40, &done, &remaining));
      }
      co_await done.Wait();
      // Maintenance between waves.
      Engine::ExecContext ctx;
      ctx.engine = eng;
      EXPECT_TRUE((co_await eng->Checkpoint(ctx)).ok());
      EXPECT_TRUE(
          (co_await eng->ReorganizeIndex(ctx, tpcc->order_line())).ok());
    }
    co_await eng->Shutdown();
  }(&engine, &tatp, &tpcc, &mix_rng));
  sim.Run();

  // ---- Audit 1: TPC-C money conservation. -------------------------------
  int64_t w_ytd = 0, d_ytd = 0, h_sum = 0;
  for (auto& [k, rec] : tpcc.warehouse()->ScanAll())
    w_ytd += workload::DecodeRow<workload::WarehouseRow>(Slice(rec)).ytd_cents;
  for (auto& [k, rec] : tpcc.district()->ScanAll())
    d_ytd += workload::DecodeRow<workload::DistrictRow>(Slice(rec)).ytd_cents;
  for (auto& [k, rec] : tpcc.history()->ScanAll())
    h_sum += workload::DecodeRow<workload::HistoryRow>(Slice(rec)).amount_cents;
  EXPECT_EQ(w_ytd, d_ytd);
  EXPECT_EQ(w_ytd, h_sum);

  // ---- Audit 2: order-line integrity after reorgs. -----------------------
  ASSERT_TRUE(tpcc.order_line()->primary().CheckInvariants().ok());
  std::map<std::string, std::string> lines;
  for (auto& [k, v] : tpcc.order_line()->ScanAll()) lines[k] = v;
  for (auto& [k, rec] : tpcc.orders()->ScanAll()) {
    auto row = workload::DecodeRow<workload::OrderRow>(Slice(rec));
    int found = 0;
    for (int32_t ol = 0; ol < row.ol_cnt; ++ol) {
      found += lines.count(k + index::EncodeKeyU64(static_cast<uint64_t>(ol)));
    }
    const int32_t ol_cnt = row.ol_cnt;
    EXPECT_EQ(found, ol_cnt);
  }

  // ---- Audit 3: recovery reproduces the final state. ---------------------
  // The last checkpoint + suffix must rebuild... but checkpoints moved base
  // data, so recovery from the durable log into an engine restored to the
  // LAST CHECKPOINT state must equal the final state. Approximate by
  // checking recovery parses cleanly and replays only the suffix.
  struct CountingTarget : wal::RecoveryTarget {
    uint64_t ops = 0;
    void RedoInsert(uint32_t, Slice, Slice) override { ++ops; }
    void RedoUpdate(uint32_t, Slice, Slice) override { ++ops; }
    void RedoDelete(uint32_t, Slice) override { ++ops; }
  } counter;
  wal::RecoveryStats stats;
  ASSERT_TRUE(
      wal::Recover(engine.log()->durable_prefix(), &counter, &stats).ok());
  // The final wave ended with a checkpoint, so the replayable suffix is
  // empty: everything is in base data already.
  EXPECT_EQ(counter.ops, 0u);
  EXPECT_NE(stats.checkpoint_lsn, wal::kInvalidLsn);
}

INSTANTIATE_TEST_SUITE_P(AllModes, StressTest,
                         ::testing::Values(EngineMode::kConventional,
                                           EngineMode::kDora,
                                           EngineMode::kBionic),
                         [](const ::testing::TestParamInfo<EngineMode>& info) {
                           return EngineModeName(info.param);
                         });

}  // namespace
}  // namespace bionicdb
