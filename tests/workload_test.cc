// End-to-end workload tests: TATP and TPC-C running through all three
// engine architectures, checking functional invariants (money conservation,
// order-line consistency, cross-engine equivalence) and mix shape.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "engine/engine.h"
#include "index/codec.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"

namespace bionicdb::workload {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::EngineMode;
using engine::EngineModeName;
using index::EncodeKeyU64;
using index::EncodeKeyU64Pair;
using index::EncodeKeyU64Triple;
using sim::Simulator;
using sim::Task;

EngineConfig ConfigFor(EngineMode mode) {
  switch (mode) {
    case EngineMode::kConventional:
      return EngineConfig::Conventional();
    case EngineMode::kDora: {
      EngineConfig c = EngineConfig::Dora();
      c.num_partitions = 4;
      return c;
    }
    case EngineMode::kBionic: {
      EngineConfig c = EngineConfig::Bionic();
      c.num_partitions = 4;
      return c;
    }
  }
  return EngineConfig::Dora();
}

class WorkloadModeTest : public ::testing::TestWithParam<EngineMode> {};

// -------------------------------------------------------------------- TATP --

TEST_P(WorkloadModeTest, TatpMixRunsClean) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TatpConfig wcfg;
  wcfg.subscribers = 500;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  EXPECT_EQ(tatp.subscriber()->rows(), 500u);

  DriverConfig dcfg;
  dcfg.clients = 4;
  dcfg.warmup_txns = 50;
  dcfg.measured_txns = 400;
  DriverReport report;
  sim.Spawn(RunClosedLoop(
      &engine, [&]() { return tatp.NextTransaction(); }, dcfg, &report));
  sim.Run();

  EXPECT_EQ(report.submitted, 400u);
  // Every submission commits (possibly after wait-die retries).
  EXPECT_EQ(engine.metrics().commits, 400u - report.gave_up);
  EXPECT_EQ(report.gave_up, 0u);
  EXPECT_GT(engine.metrics().TxnPerSecond(), 0.0);
  EXPECT_GT(engine.metrics().joules, 0.0);
}

TEST_P(WorkloadModeTest, TatpUpdateLocationRoundTrip) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TatpConfig wcfg;
  wcfg.subscribers = 100;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  engine.Start();
  sim.Spawn([](Engine* eng, TatpWorkload* tatp) -> Task<> {
    Status st = co_await eng->Execute(
        tatp->MakeUpdateLocation(tatp->SubNbr(42), 0xBEEF));
    EXPECT_TRUE(st.ok()) << st.ToString();
    co_await eng->Shutdown();
  }(&engine, &tatp));
  sim.Run();

  // Verify functionally through the table.
  auto rows = tatp.subscriber()->ScanAll();
  SubscriberRow row = DecodeRow<SubscriberRow>(Slice(rows[42].second));
  const uint32_t vlr = row.vlr_location;
  const uint64_t sid = row.s_id;
  EXPECT_EQ(vlr, 0xBEEFu);
  EXPECT_EQ(sid, 42u);
}

TEST_P(WorkloadModeTest, TatpInsertThenDeleteCallForwarding) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TatpConfig wcfg;
  wcfg.subscribers = 50;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  const size_t before = tatp.call_forwarding()->ScanAll().size();
  engine.Start();
  sim.Spawn([](Engine* eng, TatpWorkload* tatp) -> Task<> {
    for (int i = 0; i < 20; ++i) {
      (void)co_await eng->Execute(tatp->MakeInsertCallForwarding(7));
      (void)co_await eng->Execute(tatp->MakeDeleteCallForwarding(7));
    }
    co_await eng->Shutdown();
  }(&engine, &tatp));
  sim.Run();
  // Inserts and deletes on the same subscriber must cancel out or leave at
  // most the 12 possible (sf_type x start_time) combinations.
  const size_t after = tatp.call_forwarding()->ScanAll().size();
  EXPECT_LE(after, before + 12);
}

// -------------------------------------------------------------------- TPCC --

TEST_P(WorkloadModeTest, TpccNewOrderConsistency) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TpccConfig wcfg;
  wcfg.items = 200;
  wcfg.customers_per_district = 30;
  wcfg.districts_per_warehouse = 4;
  wcfg.initial_orders_per_district = 10;
  TpccWorkload tpcc(&engine, wcfg);
  ASSERT_TRUE(tpcc.Load().ok());

  engine.Start();
  int committed = 0;
  sim.Spawn([](Engine* eng, TpccWorkload* tpcc, int* committed) -> Task<> {
    for (int i = 0; i < 10; ++i) {
      Status st = co_await eng->Execute(tpcc->MakeNewOrder(0, 1));
      if (st.ok()) ++*committed;
    }
    co_await eng->Shutdown();
  }(&engine, &tpcc, &committed));
  sim.Run();
  EXPECT_EQ(committed, 10);

  // District (0,1)'s next_o_id advanced by exactly the committed count.
  DistrictRow dr{};
  for (auto& [key, rec] : tpcc.district()->ScanAll()) {
    DistrictRow row = DecodeRow<DistrictRow>(Slice(rec));
    if (row.w_id == 0 && row.d_id == 1) dr = row;
  }
  const uint64_t next_o = dr.next_o_id;
  EXPECT_EQ(next_o,
            static_cast<uint64_t>(wcfg.initial_orders_per_district) + 10);

  // Each committed order produced ORDER and ORDER_LINE rows (visible via
  // the patched logical scan).
  std::map<std::string, std::string> orders;
  for (auto& [k, v] : tpcc.orders()->ScanAll()) orders[k] = v;
  std::map<std::string, std::string> lines;
  for (auto& [k, v] : tpcc.order_line()->ScanAll()) lines[k] = v;
  for (uint64_t o = static_cast<uint64_t>(wcfg.initial_orders_per_district);
       o < dr.next_o_id; ++o) {
    const std::string okey = EncodeKeyU64Triple(0, 1, o);
    ASSERT_TRUE(orders.count(okey)) << "order " << o;
    OrderRow orow = DecodeRow<OrderRow>(Slice(orders[okey]));
    int found = 0;
    for (int32_t ol = 0; ol < orow.ol_cnt; ++ol) {
      found += lines.count(okey + EncodeKeyU64(static_cast<uint32_t>(ol)));
    }
    const int32_t ol_cnt = orow.ol_cnt;
    EXPECT_EQ(found, ol_cnt) << "order " << o;
  }
}

TEST_P(WorkloadModeTest, TpccPaymentConservesMoney) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TpccConfig wcfg;
  wcfg.items = 100;
  wcfg.customers_per_district = 20;
  wcfg.districts_per_warehouse = 2;
  TpccWorkload tpcc(&engine, wcfg);
  ASSERT_TRUE(tpcc.Load().ok());

  engine.Start();
  sim.Spawn([](Engine* eng, TpccWorkload* tpcc) -> Task<> {
    for (int i = 0; i < 25; ++i) {
      Status st = co_await eng->Execute(
          tpcc->MakePayment(0, static_cast<uint64_t>(i % 2),
                            static_cast<uint64_t>(i % 20)));
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    co_await eng->Shutdown();
  }(&engine, &tpcc));
  sim.Run();

  // Sum of district ytd == warehouse ytd == sum of history amounts.
  int64_t w_ytd = 0, d_ytd = 0, h_sum = 0;
  for (auto& [key, rec] : tpcc.warehouse()->ScanAll()) {
    w_ytd += DecodeRow<WarehouseRow>(Slice(rec)).ytd_cents;
  }
  for (auto& [key, rec] : tpcc.district()->ScanAll()) {
    d_ytd += DecodeRow<DistrictRow>(Slice(rec)).ytd_cents;
  }
  for (auto& [key, rec] : tpcc.history()->ScanAll()) {
    h_sum += DecodeRow<HistoryRow>(Slice(rec)).amount_cents;
  }
  EXPECT_GT(w_ytd, 0);
  EXPECT_EQ(w_ytd, d_ytd);
  EXPECT_EQ(w_ytd, h_sum);
}

TEST_P(WorkloadModeTest, TpccStockLevelCountsBelowThreshold) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TpccConfig wcfg;
  wcfg.items = 100;
  wcfg.customers_per_district = 10;
  wcfg.districts_per_warehouse = 2;
  wcfg.initial_orders_per_district = 25;
  TpccWorkload tpcc(&engine, wcfg);
  ASSERT_TRUE(tpcc.Load().ok());

  engine.Start();
  Status result;
  sim.Spawn([](Engine* eng, TpccWorkload* tpcc, Status* out) -> Task<> {
    *out = co_await eng->Execute(tpcc->MakeStockLevel(0, 0, 100));
    co_await eng->Shutdown();
  }(&engine, &tpcc, &result));
  sim.Run();
  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_EQ(engine.metrics().commits, 1u);
}

TEST_P(WorkloadModeTest, TpccMixedRunStaysConsistent) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TpccConfig wcfg;
  wcfg.items = 200;
  wcfg.customers_per_district = 20;
  wcfg.districts_per_warehouse = 4;
  TpccWorkload tpcc(&engine, wcfg);
  ASSERT_TRUE(tpcc.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 4;
  dcfg.warmup_txns = 20;
  dcfg.measured_txns = 150;
  DriverReport report;
  sim.Spawn(RunClosedLoop(
      &engine, [&]() { return tpcc.NextTransaction(); }, dcfg, &report));
  sim.Run();

  const auto& m = engine.metrics();
  // With wait-die retries (pinned priorities), almost every submission
  // commits; under the single-warehouse Payment hotspot a handful may
  // exhaust their retry budget.
  EXPECT_EQ(m.commits, 150u - report.gave_up);
  EXPECT_LE(report.gave_up, 8u);

  // Warehouse/district/history money invariant must hold under the mix.
  int64_t w_ytd = 0, d_ytd = 0, h_sum = 0;
  for (auto& [key, rec] : tpcc.warehouse()->ScanAll()) {
    w_ytd += DecodeRow<WarehouseRow>(Slice(rec)).ytd_cents;
  }
  for (auto& [key, rec] : tpcc.district()->ScanAll()) {
    d_ytd += DecodeRow<DistrictRow>(Slice(rec)).ytd_cents;
  }
  for (auto& [key, rec] : tpcc.history()->ScanAll()) {
    h_sum += DecodeRow<HistoryRow>(Slice(rec)).amount_cents;
  }
  EXPECT_EQ(w_ytd, d_ytd);
  EXPECT_EQ(w_ytd, h_sum);
}

INSTANTIATE_TEST_SUITE_P(AllModes, WorkloadModeTest,
                         ::testing::Values(EngineMode::kConventional,
                                           EngineMode::kDora,
                                           EngineMode::kBionic),
                         [](const ::testing::TestParamInfo<EngineMode>& info) {
                           return EngineModeName(info.param);
                         });

// ------------------------------------------------------------ determinism --

TEST(WorkloadDeterminismTest, SameSeedSameResult) {
  auto run = []() {
    Simulator sim;
    Engine engine(&sim, ConfigFor(EngineMode::kDora));
    TatpConfig wcfg;
    wcfg.subscribers = 200;
    TatpWorkload tatp(&engine, wcfg);
    BIONICDB_CHECK(tatp.Load().ok());
    DriverConfig dcfg;
    dcfg.clients = 3;
    dcfg.warmup_txns = 10;
    dcfg.measured_txns = 120;
    sim.Spawn(RunClosedLoop(
        &engine, [&]() { return tatp.NextTransaction(); }, dcfg, nullptr));
    sim.Run();
    return std::tuple{engine.metrics().commits, sim.Now(),
                      engine.breakdown().TotalNs(),
                      engine.log()->current_lsn()};
  };
  EXPECT_EQ(run(), run());
}

// --------------------------------------------- cross-engine equivalence --

TEST(WorkloadEquivalenceTest, AllEnginesProduceIdenticalTatpState) {
  // Running the same deterministic transaction sequence through each
  // architecture must yield identical logical table contents: the bionic
  // engine changes *where* work happens, never *what* is computed.
  auto final_state = [](EngineMode mode) {
    Simulator sim;
    Engine engine(&sim, ConfigFor(mode));
    TatpConfig wcfg;
    wcfg.subscribers = 100;
    wcfg.seed = 99;
    TatpWorkload tatp(&engine, wcfg);
    BIONICDB_CHECK(tatp.Load().ok());
    engine.Start();
    sim.Spawn([](Engine* eng, TatpWorkload* tatp) -> Task<> {
      // One client, fixed sequence: identical functional outcome required.
      for (int i = 0; i < 60; ++i) {
        (void)co_await eng->Execute(tatp->NextTransaction());
      }
      co_await eng->Shutdown();
    }(&engine, &tatp));
    sim.Run();
    std::map<std::string, std::string> state;
    for (auto* t : {tatp.subscriber(), tatp.access_info(),
                    tatp.special_facility(), tatp.call_forwarding()}) {
      for (auto& [k, v] : t->ScanAll()) state[t->name() + "/" + k] = v;
    }
    return state;
  };
  auto conventional = final_state(EngineMode::kConventional);
  auto dora = final_state(EngineMode::kDora);
  auto bionic = final_state(EngineMode::kBionic);
  EXPECT_EQ(conventional, dora);
  EXPECT_EQ(dora, bionic);
}

}  // namespace
}  // namespace bionicdb::workload

namespace bionicdb::workload {
namespace {

// ------------------------------------------- Delivery / OrderStatus (TPC-C) --

class TpccFullMixTest : public ::testing::TestWithParam<engine::EngineMode> {};

TEST_P(TpccFullMixTest, DeliveryDrainsNewOrdersAndCreditsCustomers) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TpccConfig wcfg;
  wcfg.items = 100;
  wcfg.customers_per_district = 20;
  wcfg.districts_per_warehouse = 3;
  wcfg.initial_orders_per_district = 5;
  TpccWorkload tpcc(&engine, wcfg);
  ASSERT_TRUE(tpcc.Load().ok());

  // All initial orders are pending (no NEW_ORDER rows were loaded), so add
  // fresh orders first: 2 NewOrders per district.
  engine.Start();
  int64_t delivered_sum = 0;
  sim.Spawn([](Engine* eng, TpccWorkload* tpcc,
               int64_t* delivered_sum) -> Task<> {
    for (uint64_t d = 0; d < 3; ++d) {
      for (int i = 0; i < 2; ++i) {
        Status st = co_await eng->Execute(tpcc->MakeNewOrder(0, d));
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    }
    // One delivery pops the oldest order of every district.
    Status st = co_await eng->Execute(tpcc->MakeDelivery(0, 7));
    EXPECT_TRUE(st.ok()) << st.ToString();
    // A second delivery pops the remaining ones.
    st = co_await eng->Execute(tpcc->MakeDelivery(0, 8));
    EXPECT_TRUE(st.ok()) << st.ToString();
    // A third has nothing to do but still commits.
    st = co_await eng->Execute(tpcc->MakeDelivery(0, 9));
    EXPECT_TRUE(st.ok()) << st.ToString();
    co_await eng->Shutdown();
    (void)delivered_sum;
  }(&engine, &tpcc, &delivered_sum));
  sim.Run();

  // NEW_ORDER is empty; the 6 new orders carry carriers 7 or 8.
  EXPECT_TRUE(tpcc.new_order()->ScanAll().empty());
  int delivered = 0;
  int64_t credited = 0;
  for (auto& [k, rec] : tpcc.orders()->ScanAll()) {
    OrderRow row = DecodeRow<OrderRow>(Slice(rec));
    if (row.o_id >= 5 && (row.carrier_id == 7 || row.carrier_id == 8)) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 6);
  // Customer balances moved by exactly the delivered line totals: compare
  // against a direct recomputation.
  std::map<std::pair<uint64_t, uint64_t>, int64_t> expected_credit;
  for (auto& [k, rec] : tpcc.order_line()->ScanAll()) {
    OrderLineRow ol = DecodeRow<OrderLineRow>(Slice(rec));
    if (ol.o_id < 5) continue;  // initial orders were never delivered
    const uint64_t d_id = ol.d_id, o_id = ol.o_id;
    expected_credit[{d_id, o_id}] += ol.amount_cents;
  }
  for (auto& [key, sum] : expected_credit) credited += sum;
  int64_t balance_delta = 0;
  for (auto& [k, rec] : tpcc.customer()->ScanAll()) {
    balance_delta +=
        DecodeRow<CustomerRow>(Slice(rec)).balance_cents - (-1000);
  }
  EXPECT_EQ(balance_delta, credited);
}

TEST_P(TpccFullMixTest, OrderStatusFindsNewestOrder) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TpccConfig wcfg;
  wcfg.items = 100;
  wcfg.customers_per_district = 5;
  wcfg.districts_per_warehouse = 2;
  wcfg.initial_orders_per_district = 8;
  TpccWorkload tpcc(&engine, wcfg);
  ASSERT_TRUE(tpcc.Load().ok());
  engine.Start();
  sim.Spawn([](Engine* eng, TpccWorkload* tpcc) -> Task<> {
    // Every customer of district 0 gets an order-status query; all commit.
    for (uint64_t c = 0; c < 5; ++c) {
      Status st = co_await eng->Execute(tpcc->MakeOrderStatus(0, 0, c));
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    co_await eng->Shutdown();
  }(&engine, &tpcc));
  sim.Run();
  EXPECT_EQ(engine.metrics().commits, 5u);
}

TEST_P(TpccFullMixTest, FullFiveTxnMixStaysConsistent) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TpccConfig wcfg;
  wcfg.items = 200;
  wcfg.customers_per_district = 20;
  wcfg.districts_per_warehouse = 4;
  TpccWorkload tpcc(&engine, wcfg);
  ASSERT_TRUE(tpcc.Load().ok());
  DriverConfig dcfg;
  dcfg.clients = 4;
  dcfg.warmup_txns = 20;
  dcfg.measured_txns = 200;
  DriverReport report;
  sim.Spawn(RunClosedLoop(
      &engine, [&]() { return tpcc.NextTransaction(); }, dcfg, &report));
  sim.Run();
  EXPECT_EQ(engine.metrics().commits, 200u - report.gave_up);
  EXPECT_LE(report.gave_up, 10u);
  // The Payment money invariant must survive the full mix (Delivery only
  // moves money between ORDER_LINE totals and customer balances).
  int64_t w_ytd = 0, d_ytd = 0, h_sum = 0;
  for (auto& [k, rec] : tpcc.warehouse()->ScanAll())
    w_ytd += DecodeRow<WarehouseRow>(Slice(rec)).ytd_cents;
  for (auto& [k, rec] : tpcc.district()->ScanAll())
    d_ytd += DecodeRow<DistrictRow>(Slice(rec)).ytd_cents;
  for (auto& [k, rec] : tpcc.history()->ScanAll())
    h_sum += DecodeRow<HistoryRow>(Slice(rec)).amount_cents;
  EXPECT_EQ(w_ytd, d_ytd);
  EXPECT_EQ(w_ytd, h_sum);
}

INSTANTIATE_TEST_SUITE_P(AllModes, TpccFullMixTest,
                         ::testing::Values(engine::EngineMode::kConventional,
                                           engine::EngineMode::kDora,
                                           engine::EngineMode::kBionic),
                         [](const ::testing::TestParamInfo<engine::EngineMode>&
                                info) { return EngineModeName(info.param); });

}  // namespace
}  // namespace bionicdb::workload
