// Driver tests: closed-loop config validation and report accounting
// (retry jitter at zero backoff, zero-client clamp, abort-storm and
// fault-plan invariants), the arrival-process models, and the open-loop
// overload driver end to end (shedding, sojourn accounting, determinism,
// admit-stage attribution).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "engine/engine.h"
#include "obs/timeline.h"
#include "sim/simulator.h"
#include "workload/arrival.h"
#include "workload/driver.h"
#include "workload/tatp.h"

namespace bionicdb::workload {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::EngineMode;
using sim::Simulator;
using sim::Task;

EngineConfig DoraConfig() {
  EngineConfig c = EngineConfig::Dora();
  c.num_partitions = 4;
  return c;
}

// --------------------------------------------------- config validation --

TEST(DriverConfigTest, ValidatedConfigClampsDegenerateValues) {
  DriverConfig cfg;
  cfg.clients = 0;
  cfg.max_retries = -3;
  cfg.retry_backoff_ns = -1;
  const DriverConfig v = ValidatedDriverConfig(cfg);
  EXPECT_EQ(v.clients, 1);
  EXPECT_EQ(v.max_retries, 0);
  EXPECT_EQ(v.retry_backoff_ns, 0);
  // Sane configs pass through untouched.
  DriverConfig ok;
  ok.clients = 7;
  EXPECT_EQ(ValidatedDriverConfig(ok).clients, 7);
}

// Regression: clients == 0 used to make RunWave spawn zero clients, so the
// wave completion never fired and the run hung forever (and the per-client
// share split divided by zero). The validated path clamps to one client.
TEST(DriverConfigTest, ZeroClientsRunsToCompletion) {
  Simulator sim;
  Engine engine(&sim, DoraConfig());
  TatpConfig wcfg;
  wcfg.subscribers = 100;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 0;  // would hang before validation existed
  dcfg.warmup_txns = 10;
  dcfg.measured_txns = 50;
  DriverReport report;
  sim.Spawn(RunClosedLoop(
      &engine, [&]() { return tatp.NextTransaction(); }, dcfg, &report));
  sim.Run();
  EXPECT_EQ(report.submitted, 50u);
}

// ------------------------------------------------------ retry accounting --

/// All clients update the same subscriber row: guaranteed write-write
/// conflicts, so wait-die aborts (and therefore the retry path) fire.
DriverReport RunContendedStorm(int max_retries, SimTime backoff_ns,
                               uint64_t* commits_out) {
  Simulator sim;
  Engine engine(&sim, DoraConfig());
  TatpConfig wcfg;
  wcfg.subscribers = 10;
  TatpWorkload tatp(&engine, wcfg);
  BIONICDB_CHECK(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 8;
  dcfg.warmup_txns = 0;
  dcfg.measured_txns = 200;
  dcfg.max_retries = max_retries;
  dcfg.retry_backoff_ns = backoff_ns;
  DriverReport report;
  sim.Spawn(RunClosedLoop(
      &engine, [&]() { return tatp.MakeUpdateSubscriberData(3); }, dcfg,
      &report));
  sim.Run();
  *commits_out = engine.metrics().commits;
  return report;
}

// Regression: retry_backoff_ns == 0 used to draw Rng::Uniform(0) for the
// jitter — a contract violation (n > 0) that tripped the DCHECK in debug
// builds on the first wait-die retry. Zero backoff now means an immediate
// retry with no jitter draw.
TEST(DriverReportTest, ZeroRetryBackoffRetriesImmediately) {
  uint64_t commits = 0;
  const DriverReport report =
      RunContendedStorm(/*max_retries=*/30, /*backoff_ns=*/0, &commits);
  EXPECT_EQ(report.submitted, 200u);
  // The storm must actually exercise the retry path for this to regress.
  EXPECT_GT(report.retries, 0u);
  EXPECT_EQ(commits, report.submitted - report.gave_up - report.failed);
}

// Satellite: accounting when the retry budget is exhausted. Every aborted
// attempt counts toward `retries` (including the final one), a transaction
// whose budget runs out lands in `gave_up` exactly once, and commits always
// reconcile: commits == submitted - gave_up - failed.
TEST(DriverReportTest, InvariantsWhenRetryBudgetExhausted) {
  uint64_t commits = 0;
  const DriverReport report =
      RunContendedStorm(/*max_retries=*/0, /*backoff_ns=*/100, &commits);
  EXPECT_EQ(report.submitted, 200u);
  EXPECT_GT(report.gave_up, 0u);  // zero budget: first abort gives up
  // With max_retries == 0 each gave-up txn had exactly one aborted attempt.
  EXPECT_GE(report.retries, report.gave_up);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(commits, report.submitted - report.gave_up - report.failed);
}

// Satellite: non-aborted failures (a dead log device via sim::FaultPlan)
// are counted in `failed`, never retried, and never conflated with
// wait-die `gave_up`.
TEST(DriverReportTest, FaultPlanFailuresCountedNotRetried) {
  Simulator sim;
  EngineConfig cfg = DoraConfig();
  cfg.fault_plan.WithErrorRate("ssd", 1.0);  // every log flush fails
  Engine engine(&sim, cfg);
  TatpConfig wcfg;
  wcfg.subscribers = 50;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 1;  // no contention: aborts impossible, only durability
  dcfg.warmup_txns = 0;
  dcfg.measured_txns = 30;
  dcfg.preheat = false;
  DriverReport report;
  sim.Spawn(RunClosedLoop(
      &engine, [&]() { return tatp.MakeUpdateLocation(tatp.SubNbr(7), 1); },
      dcfg, &report));
  sim.Run();

  EXPECT_EQ(report.submitted, 30u);
  EXPECT_EQ(report.failed, 30u);  // every write txn fails durability
  EXPECT_EQ(report.gave_up, 0u);
  EXPECT_EQ(report.retries, 0u);  // non-aborted statuses are not retried
  EXPECT_EQ(engine.metrics().commits,
            report.submitted - report.gave_up - report.failed);
}

// --------------------------------------------------------- arrival model --

TEST(ArrivalModelTest, PoissonMeanGapMatchesOfferedRate) {
  ArrivalConfig cfg;
  cfg.offered_tps = 1e6;  // mean gap 1000 ns
  ArrivalModel model(cfg);
  double sum = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(model.NextGapNs(0));
  const double mean = sum / kDraws;
  EXPECT_GT(mean, 900.0);
  EXPECT_LT(mean, 1100.0);
}

TEST(ArrivalModelTest, ClampsDegenerateConfig) {
  ArrivalConfig cfg;
  cfg.offered_tps = 0;  // clamped to a positive rate
  cfg.population = 0;   // clamped to 1
  ArrivalModel model(cfg);
  EXPECT_GE(model.NextGapNs(0), 1);
  EXPECT_EQ(model.NextClient(), 0u);  // population 1: only client 0
}

TEST(ArrivalModelTest, SameSeedSameStream) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kBursty;
  ArrivalModel a(cfg);
  ArrivalModel b(cfg);
  SimTime now_a = 0, now_b = 0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime ga = a.NextGapNs(now_a);
    const SimTime gb = b.NextGapNs(now_b);
    ASSERT_EQ(ga, gb);
    now_a += ga;
    now_b += gb;
    ASSERT_EQ(a.NextClient(), b.NextClient());
  }
}

TEST(ArrivalModelTest, DiurnalGapsStayPositiveThroughTrough) {
  ArrivalConfig cfg;
  cfg.process = ArrivalProcess::kDiurnal;
  cfg.offered_tps = 1e6;
  cfg.diurnal_amplitude = 0.99;  // near-zero trough rate
  ArrivalModel model(cfg);
  SimTime now = 0;
  for (int i = 0; i < 5000; ++i) {
    const SimTime gap = model.NextGapNs(now);
    ASSERT_GE(gap, 1);
    now += gap;
  }
}

// ------------------------------------------------------------- open loop --

struct OpenLoopRun {
  OpenLoopReport report;
  uint64_t engine_commits = 0;
  int64_t admit_p99_ns = 0;  ///< Admit-stage p99 from the flight recorder.
};

OpenLoopRun RunOpenLoopOnce(EngineMode mode, ArrivalProcess process,
                            double offered_tps, size_t depth,
                            SimTime measure_ns = 5000000) {
  Simulator sim;
  EngineConfig cfg =
      mode == EngineMode::kBionic ? EngineConfig::Bionic() : DoraConfig();
  cfg.flight.enabled = true;
  cfg.admission.enabled = true;
  cfg.admission.depth = depth;
  Engine engine(&sim, cfg);
  TatpConfig wcfg;
  wcfg.subscribers = 500;
  TatpWorkload tatp(&engine, wcfg);
  BIONICDB_CHECK(tatp.Load().ok());

  OpenLoopConfig ocfg;
  ocfg.arrival.process = process;
  ocfg.arrival.offered_tps = offered_tps;
  ocfg.warmup_ns = 1000000;
  ocfg.measure_ns = measure_ns;
  ocfg.service.clients = 16;
  ocfg.service.max_retries = 8;
  OpenLoopRun run;
  sim.Spawn(RunOpenLoop(
      &engine, [&]() { return tatp.NextTransaction(); }, ocfg, &run.report));
  sim.Run();
  run.engine_commits = engine.metrics().commits;
  run.admit_p99_ns =
      engine.flight_recorder()->stage_hist(obs::Stage::kAdmit).Percentile(99);
  return run;
}

TEST(OpenLoopTest, LowLoadShedsNothing) {
  const OpenLoopRun run = RunOpenLoopOnce(
      EngineMode::kDora, ArrivalProcess::kPoisson, /*offered_tps=*/50000,
      /*depth=*/256);
  EXPECT_GT(run.report.offered, 100u);
  EXPECT_EQ(run.report.shed, 0u);
  EXPECT_GT(run.report.completed, 0u);
  EXPECT_GT(run.report.committed, 0u);
  EXPECT_EQ(run.report.sojourn_ns.count(), run.report.completed);
  EXPECT_EQ(run.report.admission.shed, 0u);
  // Engine-side admission accounting reconciles with the driver's view.
  EXPECT_EQ(run.report.admission.offered,
            run.report.admission.admitted + run.report.admission.shed);
}

TEST(OpenLoopTest, OverloadShedsAndStaysBounded) {
  const OpenLoopRun run = RunOpenLoopOnce(
      EngineMode::kDora, ArrivalProcess::kPoisson, /*offered_tps=*/2e7,
      /*depth=*/64, /*measure_ns=*/2000000);
  EXPECT_GT(run.report.shed, 0u);
  EXPECT_GT(run.report.shed_rate(), 0.5);  // 10x capacity: mostly shed
  EXPECT_GT(run.report.committed, 0u);     // but goodput never collapses
  // Memory stayed bounded: the queue never grew past its depth.
  EXPECT_LE(run.report.admission.max_depth, 64u);
  EXPECT_EQ(run.report.admission.offered,
            run.report.admission.admitted + run.report.admission.shed);
}

// Queue wait is charged to the timeline's admit stage: under overload the
// admit-stage p99 must dwarf the low-load one (where the queue is empty).
TEST(OpenLoopTest, QueueWaitChargedToAdmitStage) {
  const OpenLoopRun calm = RunOpenLoopOnce(
      EngineMode::kDora, ArrivalProcess::kPoisson, 50000, 256);
  const OpenLoopRun storm = RunOpenLoopOnce(
      EngineMode::kDora, ArrivalProcess::kPoisson, 2e7, 256, 2000000);
  EXPECT_GT(storm.admit_p99_ns, calm.admit_p99_ns);
  EXPECT_GT(storm.admit_p99_ns, 10000);  // queue wait, not epsilon
  // And the sojourn histogram reflects it end to end.
  EXPECT_GT(storm.report.sojourn_ns.Percentile(99),
            calm.report.sojourn_ns.Percentile(99));
}

TEST(OpenLoopTest, DeterministicAcrossRuns) {
  const OpenLoopRun a = RunOpenLoopOnce(
      EngineMode::kDora, ArrivalProcess::kBursty, 3e6, 128, 3000000);
  const OpenLoopRun b = RunOpenLoopOnce(
      EngineMode::kDora, ArrivalProcess::kBursty, 3e6, 128, 3000000);
  const auto key = [](const OpenLoopRun& r) {
    return std::make_tuple(r.report.offered, r.report.shed,
                           r.report.completed, r.report.committed,
                           r.report.gave_up, r.report.failed,
                           r.report.retries, r.report.sojourn_ns.count(),
                           r.report.sojourn_ns.Percentile(99),
                           r.engine_commits, r.admit_p99_ns);
  };
  EXPECT_EQ(key(a), key(b));
}

TEST(OpenLoopTest, BionicModeRunsThroughSaturation) {
  const OpenLoopRun run = RunOpenLoopOnce(
      EngineMode::kBionic, ArrivalProcess::kPoisson, 2e7, 64, 2000000);
  EXPECT_GT(run.report.committed, 0u);
  EXPECT_GT(run.report.shed, 0u);
}

TEST(OpenLoopTest, DiurnalProcessSmoke) {
  const OpenLoopRun run = RunOpenLoopOnce(
      EngineMode::kDora, ArrivalProcess::kDiurnal, 500000, 256);
  EXPECT_GT(run.report.completed, 0u);
  EXPECT_GT(run.report.committed, 0u);
}

// Deadline shedding: under deep FIFO overload every queued entry ages
// past a short SLO before a server reaches it; the queue must discard
// stale entries at claim time (deadline_shed), and the requests that DO
// get served must be fresh — their sojourn bounded near the deadline
// instead of the full-queue FIFO wait.
TEST(OpenLoopTest, DeadlineSheddingDiscardsStaleServesFresh) {
  const auto run = [](SimTime deadline_ns) {
    Simulator sim;
    EngineConfig cfg = DoraConfig();
    cfg.admission.enabled = true;
    cfg.admission.depth = 256;
    cfg.admission.deadline_ns = deadline_ns;
    Engine engine(&sim, cfg);
    TatpConfig wcfg;
    wcfg.subscribers = 200;
    TatpWorkload tatp(&engine, wcfg);
    BIONICDB_CHECK(tatp.Load().ok());

    OpenLoopConfig ocfg;
    ocfg.arrival.offered_tps = 2e7;  // ~10x capacity
    ocfg.warmup_ns = 500000;
    ocfg.measure_ns = 2000000;
    ocfg.service.clients = 8;
    OpenLoopReport report;
    sim.Spawn(RunOpenLoop(
        &engine, [&]() { return tatp.NextTransaction(); }, ocfg, &report));
    sim.Run();
    return report;
  };

  const OpenLoopReport fifo = run(/*deadline_ns=*/0);
  const OpenLoopReport slo = run(/*deadline_ns=*/100000);  // 100 us SLO

  // The deadline actually fired, and only when configured.
  EXPECT_EQ(fifo.admission.deadline_shed, 0u);
  EXPECT_GT(slo.admission.deadline_shed, 0u);
  // Goodput survives: shedding stale work is not shedding all work.
  EXPECT_GT(slo.committed, 0u);
  // Served requests are fresh: sojourn p99 collapses versus the
  // plain-FIFO full-queue wait (queue wait alone is depth/service_rate,
  // far above the 100 us deadline).
  EXPECT_LT(slo.sojourn_ns.Percentile(99), fifo.sojourn_ns.Percentile(99));
  // Accounting stays closed: everything offered is admitted or shed.
  EXPECT_EQ(slo.admission.offered,
            slo.admission.admitted + slo.admission.shed);
}

TEST(OpenLoopTest, LifoAndDropOldestServeFresh) {
  Simulator sim;
  EngineConfig cfg = DoraConfig();
  cfg.admission.enabled = true;
  cfg.admission.depth = 32;
  cfg.admission.discipline = engine::AdmissionDiscipline::kLifo;
  cfg.admission.shed = engine::ShedPolicy::kDropOldest;
  Engine engine(&sim, cfg);
  TatpConfig wcfg;
  wcfg.subscribers = 200;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  OpenLoopConfig ocfg;
  ocfg.arrival.offered_tps = 2e7;  // deep overload
  ocfg.warmup_ns = 500000;
  ocfg.measure_ns = 2000000;
  ocfg.service.clients = 8;
  OpenLoopReport report;
  sim.Spawn(RunOpenLoop(
      &engine, [&]() { return tatp.NextTransaction(); }, ocfg, &report));
  sim.Run();

  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.committed, 0u);
  // LIFO + drop-oldest: served requests are fresh, so the sojourn p99 of
  // the SERVED set stays near service time even in deep overload — far
  // below what a FIFO full-queue wait would be.
  EXPECT_LT(report.sojourn_ns.Percentile(99), 2000000);
}

}  // namespace
}  // namespace bionicdb::workload
