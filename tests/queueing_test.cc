// Tests for the concurrent queues (SPSC ring, MPMC) — including real
// multi-threaded stress — and the agent doze/convoy scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "queueing/admission.h"
#include "queueing/mpmc.h"
#include "queueing/ring.h"
#include "queueing/scheduler.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace bionicdb::queueing {
namespace {

// ------------------------------------------------------------------- SPSC --

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.Empty());
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.SizeApprox(), 2u);
  EXPECT_EQ(*ring.TryPop(), 1);
  EXPECT_EQ(*ring.TryPop(), 2);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, FillsToCapacity) {
  SpscRing<int> ring(4);
  int pushed = 0;
  while (ring.TryPush(pushed)) ++pushed;
  EXPECT_GE(pushed, 4);
  EXPECT_FALSE(ring.TryPush(99));
  EXPECT_EQ(*ring.TryPop(), 0);
  EXPECT_TRUE(ring.TryPush(99));  // a pop frees a slot
}

TEST(SpscRingTest, TwoThreadStress) {
  SpscRing<uint64_t> ring(256);
  constexpr uint64_t kItems = 200000;
  std::atomic<uint64_t> sum{0};
  std::thread producer([&] {
    for (uint64_t i = 1; i <= kItems; ++i) {
      while (!ring.TryPush(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    uint64_t local = 0, got = 0;
    uint64_t expected_next = 1;
    while (got < kItems) {
      auto v = ring.TryPop();
      if (!v) {
        std::this_thread::yield();
        continue;
      }
      // FIFO must hold exactly in SPSC.
      ASSERT_EQ(*v, expected_next);
      ++expected_next;
      local += *v;
      ++got;
    }
    sum = local;
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
}

// ------------------------------------------------------------------- MPMC --

TEST(MpmcQueueTest, PushPopSingleThread) {
  MpmcQueue<int> q(8);
  EXPECT_FALSE(q.TryPop().has_value());
  EXPECT_TRUE(q.TryPush(10));
  EXPECT_TRUE(q.TryPush(20));
  EXPECT_EQ(*q.TryPop(), 10);
  EXPECT_EQ(*q.TryPop(), 20);
}

TEST(MpmcQueueTest, FullRejectsPush) {
  MpmcQueue<int> q(4);
  int n = 0;
  while (q.TryPush(n)) ++n;
  EXPECT_EQ(n, static_cast<int>(q.capacity()));
  EXPECT_FALSE(q.TryPush(99));
}

TEST(MpmcQueueTest, ManyProducersManyConsumers) {
  MpmcQueue<uint64_t> q(1024);
  constexpr int kProducers = 4, kConsumers = 4;
  constexpr uint64_t kPerProducer = 50000;
  std::atomic<uint64_t> consumed{0}, sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        const uint64_t v = static_cast<uint64_t>(p) * kPerProducer + i + 1;
        while (!q.TryPush(v)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        auto v = q.TryPop();
        if (!v) {
          std::this_thread::yield();
          continue;
        }
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), total * (total + 1) / 2);
}

// -------------------------------------------------------------- Scheduler --

TEST(AgentSchedulerTest, SpinsBeforeDozing) {
  DozePolicy policy;
  policy.spin_polls = 3;
  AgentScheduler sched(policy);
  EXPECT_FALSE(sched.OnEmptyPoll());
  EXPECT_FALSE(sched.OnEmptyPoll());
  EXPECT_TRUE(sched.OnEmptyPoll());  // third empty poll -> doze
  EXPECT_EQ(sched.dozes(), 1u);
  EXPECT_EQ(sched.empty_polls(), 3u);
}

TEST(AgentSchedulerTest, WorkResetsStreak) {
  DozePolicy policy;
  policy.spin_polls = 2;
  AgentScheduler sched(policy);
  EXPECT_FALSE(sched.OnEmptyPoll());
  sched.OnWorkFound(1, false);
  EXPECT_FALSE(sched.OnEmptyPoll());  // streak restarted
  EXPECT_TRUE(sched.OnEmptyPoll());
}

TEST(AgentSchedulerTest, ConvoyDetection) {
  AgentScheduler sched(DozePolicy{});
  sched.set_convoy_threshold(4);
  sched.OnWorkFound(10, /*was_dozing=*/true);  // deep backlog after doze
  sched.OnWorkFound(10, /*was_dozing=*/false);  // deep but awake: not convoy
  sched.OnWorkFound(2, /*was_dozing=*/true);    // shallow: not convoy
  EXPECT_EQ(sched.convoys(), 1u);
}

// -------------------------------------------------------- AdmissionQueue --

using engine::AdmissionConfig;
using engine::AdmissionDiscipline;
using engine::AdmissionQueue;
using engine::ShedPolicy;
using IntQueue = AdmissionQueue<int>;

/// Drains the queue until Close(), recording item order.
sim::Task<void> DrainAll(IntQueue* q, std::vector<int>* got) {
  std::vector<IntQueue::Entry> batch;
  for (;;) {
    const size_t n = co_await q->PopBatch(&batch);
    if (n == 0) break;
    for (auto& e : batch) got->push_back(e.item);
  }
}

TEST(AdmissionQueueTest, FifoOrderAndStats) {
  sim::Simulator sim;
  AdmissionConfig cfg;
  cfg.depth = 8;
  IntQueue q(&sim, cfg);
  std::vector<int> got;
  sim.Spawn(DrainAll(&q, &got));
  sim.Spawn([](sim::Simulator* s, IntQueue* q) -> sim::Task<> {
    for (int i = 1; i <= 3; ++i) {
      EXPECT_TRUE(q->Offer(i));
      co_await sim::Delay{s, 10};
    }
    q->Close();
  }(&sim, &q));
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.stats().offered, 3u);
  EXPECT_EQ(q.stats().admitted, 3u);
  EXPECT_EQ(q.stats().popped, 3u);
  EXPECT_EQ(q.stats().shed, 0u);
}

TEST(AdmissionQueueTest, LifoServesFreshestFirst) {
  sim::Simulator sim;
  AdmissionConfig cfg;
  cfg.depth = 8;
  cfg.discipline = AdmissionDiscipline::kLifo;
  IntQueue q(&sim, cfg);
  // Enqueue 1,2,3 before the consumer starts, then drain: LIFO pops 3,2,1.
  std::vector<int> got;
  sim.Spawn([](sim::Simulator* s, IntQueue* q,
               std::vector<int>* got) -> sim::Task<> {
    q->Offer(1);
    q->Offer(2);
    q->Offer(3);
    q->Close();
    co_await DrainAll(q, got);
  }(&sim, &q, &got));
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{3, 2, 1}));
}

TEST(AdmissionQueueTest, DepthBoundShedsRejectNew) {
  sim::Simulator sim;
  AdmissionConfig cfg;
  cfg.depth = 2;
  IntQueue q(&sim, cfg);
  EXPECT_TRUE(q.Offer(1));
  EXPECT_TRUE(q.Offer(2));
  EXPECT_FALSE(q.Offer(3));  // full: arriving request is shed
  EXPECT_EQ(q.stats().offered, 3u);
  EXPECT_EQ(q.stats().admitted, 2u);
  EXPECT_EQ(q.stats().shed, 1u);
  EXPECT_EQ(q.stats().max_depth, 2u);
  EXPECT_EQ(q.depth(), 2u);
  std::vector<int> got;
  sim.Spawn(DrainAll(&q, &got));
  q.Close();
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(AdmissionQueueTest, DropOldestEvictsToAdmitFresh) {
  sim::Simulator sim;
  AdmissionConfig cfg;
  cfg.depth = 2;
  cfg.shed = ShedPolicy::kDropOldest;
  IntQueue q(&sim, cfg);
  EXPECT_TRUE(q.Offer(1));
  EXPECT_TRUE(q.Offer(2));
  EXPECT_TRUE(q.Offer(3));  // evicts 1, admits 3
  EXPECT_EQ(q.stats().admitted, 3u);
  EXPECT_EQ(q.stats().shed, 1u);
  EXPECT_EQ(q.depth(), 2u);
  std::vector<int> got;
  sim.Spawn(DrainAll(&q, &got));
  q.Close();
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{2, 3}));
}

TEST(AdmissionQueueTest, BatchClaimsUpToBatchPerWakeup) {
  sim::Simulator sim;
  AdmissionConfig cfg;
  cfg.depth = 8;
  cfg.batch = 3;
  IntQueue q(&sim, cfg);
  for (int i = 0; i < 5; ++i) q.Offer(i);
  q.Close();
  std::vector<size_t> batch_sizes;
  sim.Spawn([](IntQueue* q, std::vector<size_t>* sizes) -> sim::Task<> {
    std::vector<IntQueue::Entry> batch;
    for (;;) {
      const size_t n = co_await q->PopBatch(&batch);
      if (n == 0) break;
      sizes->push_back(n);
    }
  }(&q, &batch_sizes));
  sim.Run();
  EXPECT_EQ(batch_sizes, (std::vector<size_t>{3, 2}));
  EXPECT_EQ(q.stats().popped, 5u);
}

TEST(AdmissionQueueTest, OfferAfterCloseIsShed) {
  sim::Simulator sim;
  IntQueue q(&sim, AdmissionConfig{});
  q.Close();
  EXPECT_FALSE(q.Offer(7));
  EXPECT_EQ(q.stats().shed, 1u);
  EXPECT_EQ(q.stats().admitted, 0u);
}

TEST(AdmissionQueueTest, QueueWaitAccountedOnPop) {
  sim::Simulator sim;
  IntQueue q(&sim, AdmissionConfig{});
  sim.Spawn([](sim::Simulator* s, IntQueue* q) -> sim::Task<> {
    q->Offer(1);  // enqueued at t=0
    co_await sim::Delay{s, 250};
    std::vector<IntQueue::Entry> batch;
    const size_t n = co_await q->PopBatch(&batch);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(batch[0].enqueue_ts, 0);
    q->Close();
  }(&sim, &q));
  sim.Run();
  EXPECT_EQ(q.stats().queue_wait_ns, 250);
}

TEST(AdmissionQueueTest, PopSuspendsUntilOfferArrives) {
  sim::Simulator sim;
  SimTime popped_at = -1;
  IntQueue q(&sim, AdmissionConfig{});
  sim.Spawn([](sim::Simulator* s, IntQueue* q,
               SimTime* popped_at) -> sim::Task<> {
    std::vector<IntQueue::Entry> batch;
    const size_t n = co_await q->PopBatch(&batch);
    EXPECT_EQ(n, 1u);
    *popped_at = s->Now();
  }(&sim, &q, &popped_at));
  sim.Spawn([](sim::Simulator* s, IntQueue* q) -> sim::Task<> {
    co_await sim::Delay{s, 100};
    q->Offer(42);
    q->Close();
  }(&sim, &q));
  sim.Run();
  EXPECT_EQ(popped_at, 100);
}

TEST(AdmissionQueueTest, ResetStatsKeepsQueuedWork) {
  sim::Simulator sim;
  IntQueue q(&sim, AdmissionConfig{});
  q.Offer(1);
  q.Offer(2);
  q.ResetStats();
  EXPECT_EQ(q.stats().admitted, 0u);
  EXPECT_EQ(q.depth(), 2u);  // live work survives the warmup boundary
  std::vector<int> got;
  sim.Spawn(DrainAll(&q, &got));
  q.Close();
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace bionicdb::queueing
