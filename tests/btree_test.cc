// Unit + property tests for the B+Tree: CRUD, iteration, SMOs, invariants,
// and model-based comparison against std::map under random workloads.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/btree.h"
#include "index/codec.h"

namespace bionicdb::index {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1);
  EXPECT_TRUE(t.Get("nope").status().IsNotFound());
  EXPECT_FALSE(t.Begin().Valid());
  EXPECT_TRUE(t.CheckInvariants().ok());
}

TEST(BTreeTest, InsertAndGet) {
  BTree t;
  ASSERT_TRUE(t.Insert("b", "2").ok());
  ASSERT_TRUE(t.Insert("a", "1").ok());
  ASSERT_TRUE(t.Insert("c", "3").ok());
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(*t.Get("a"), "1");
  EXPECT_EQ(*t.Get("b"), "2");
  EXPECT_EQ(*t.Get("c"), "3");
  EXPECT_TRUE(t.Get("d").status().IsNotFound());
}

TEST(BTreeTest, DuplicateInsertFailsWithoutOverwrite) {
  BTree t;
  ASSERT_TRUE(t.Insert("k", "v1").ok());
  EXPECT_TRUE(t.Insert("k", "v2").IsAlreadyExists());
  EXPECT_EQ(*t.Get("k"), "v1");
  ASSERT_TRUE(t.Insert("k", "v2", /*overwrite=*/true).ok());
  EXPECT_EQ(*t.Get("k"), "v2");
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, UpdateExisting) {
  BTree t;
  ASSERT_TRUE(t.Insert("k", "old").ok());
  ASSERT_TRUE(t.Update("k", "new").ok());
  EXPECT_EQ(*t.Get("k"), "new");
  EXPECT_TRUE(t.Update("missing", "x").IsNotFound());
}

TEST(BTreeTest, DeleteBasics) {
  BTree t;
  ASSERT_TRUE(t.Insert("a", "1").ok());
  ASSERT_TRUE(t.Insert("b", "2").ok());
  ASSERT_TRUE(t.Delete("a").ok());
  EXPECT_TRUE(t.Get("a").status().IsNotFound());
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Delete("a").IsNotFound());
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTreeConfig cfg;
  cfg.inner_fanout = 4;
  cfg.leaf_capacity = 4;
  BTree t(cfg);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Insert(EncodeKeyU64(i), EncodeKeyU64(i * 7)).ok());
  }
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_GT(t.height(), 3);
  EXPECT_GT(t.stats().splits, 100u);
  ASSERT_TRUE(t.CheckInvariants().ok());
  for (uint64_t i = 0; i < 1000; ++i) {
    auto r = t.Get(EncodeKeyU64(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(DecodeKeyU64(*r), i * 7);
  }
}

TEST(BTreeTest, HeightMatchesTracedVisits) {
  BTreeConfig cfg;
  cfg.inner_fanout = 8;
  cfg.leaf_capacity = 8;
  BTree t(cfg);
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "v").ok());
  }
  int visits = 0;
  ASSERT_TRUE(t.GetTraced(EncodeKeyU64(1234), &visits).ok());
  EXPECT_EQ(visits, t.height());
}

TEST(BTreeTest, ReverseAndRandomInsertionOrders) {
  for (int order = 0; order < 2; ++order) {
    BTreeConfig cfg;
    cfg.inner_fanout = 6;
    cfg.leaf_capacity = 6;
    BTree t(cfg);
    Rng rng(99);
    std::vector<uint64_t> keys;
    for (uint64_t i = 0; i < 2000; ++i) keys.push_back(i);
    if (order == 0) {
      std::reverse(keys.begin(), keys.end());
    } else {
      for (size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.Uniform(i)]);
      }
    }
    for (uint64_t k : keys) ASSERT_TRUE(t.Insert(EncodeKeyU64(k), "v").ok());
    ASSERT_TRUE(t.CheckInvariants().ok());
    EXPECT_EQ(t.size(), 2000u);
  }
}

TEST(BTreeTest, IterationIsSorted) {
  BTree t;
  Rng rng(7);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; ++i) {
    std::string k = rng.AlphaString(1, 12);
    std::string v = rng.AlphaString(0, 8);
    bool fresh = model.emplace(k, v).second;
    Status st = t.Insert(k, v);
    EXPECT_EQ(st.ok(), fresh);
  }
  auto mit = model.begin();
  for (auto it = t.Begin(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it.key().ToString(), mit->first);
    EXPECT_EQ(it.value().ToString(), mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

TEST(BTreeTest, SeekFindsLowerBound) {
  BTree t;
  for (uint64_t i = 0; i < 100; i += 10) {
    ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "v").ok());
  }
  auto it = t.Seek(EncodeKeyU64(25));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(DecodeKeyU64(it.key()), 30u);
  it = t.Seek(EncodeKeyU64(90));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(DecodeKeyU64(it.key()), 90u);
  it = t.Seek(EncodeKeyU64(91));
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, SeekRangeHonorsUpperBound) {
  BTree t;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "v").ok());
  }
  int count = 0;
  for (auto it = t.SeekRange(EncodeKeyU64(100), EncodeKeyU64(200));
       it.Valid(); it.Next()) {
    uint64_t k = DecodeKeyU64(it.key());
    EXPECT_GE(k, 100u);
    EXPECT_LT(k, 200u);
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(BTreeTest, SeekRangeEmptyWindow) {
  BTree t;
  for (uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(t.Insert(EncodeKeyU64(i * 100), "v").ok());
  auto it = t.SeekRange(EncodeKeyU64(150), EncodeKeyU64(190));
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, DeleteToEmptyAndReuse) {
  BTreeConfig cfg;
  cfg.inner_fanout = 4;
  cfg.leaf_capacity = 4;
  BTree t(cfg);
  for (uint64_t i = 0; i < 300; ++i) ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "v").ok());
  for (uint64_t i = 0; i < 300; ++i) ASSERT_TRUE(t.Delete(EncodeKeyU64(i)).ok()) << i;
  EXPECT_EQ(t.size(), 0u);
  ASSERT_TRUE(t.CheckInvariants().ok());
  // The tree must be fully reusable after draining.
  for (uint64_t i = 0; i < 300; ++i) ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "w").ok());
  EXPECT_EQ(t.size(), 300u);
  ASSERT_TRUE(t.CheckInvariants().ok());
  EXPECT_EQ(*t.Get(EncodeKeyU64(123)), "w");
}

TEST(BTreeTest, VariableLengthStringKeys) {
  BTree t;
  ASSERT_TRUE(t.Insert("", "empty").ok());
  ASSERT_TRUE(t.Insert("a", "1").ok());
  ASSERT_TRUE(t.Insert("aa", "2").ok());
  ASSERT_TRUE(t.Insert(std::string(1000, 'z'), "big").ok());
  EXPECT_EQ(*t.Get(""), "empty");
  EXPECT_EQ(*t.Get(std::string(1000, 'z')), "big");
  auto it = t.Begin();
  EXPECT_EQ(it.key().ToString(), "");
}

TEST(BTreeTest, ProbeStatsAccumulate) {
  BTree t;
  for (uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(t.Insert(EncodeKeyU64(i), "v").ok());
  const uint64_t before = t.stats().probes;
  (void)t.Get(EncodeKeyU64(5));
  (void)t.Get(EncodeKeyU64(999));  // miss still counts as a probe
  EXPECT_EQ(t.stats().probes, before + 2);
  EXPECT_GE(t.stats().node_visits, t.stats().probes);
}

// ------------------------------------------------------- property testing --

struct ModelParams {
  uint64_t seed;
  int inner_fanout;
  int leaf_capacity;
  int key_space;
};

class BTreeModelTest : public ::testing::TestWithParam<ModelParams> {};

TEST_P(BTreeModelTest, MatchesStdMapUnderRandomOps) {
  const ModelParams p = GetParam();
  BTreeConfig cfg;
  cfg.inner_fanout = p.inner_fanout;
  cfg.leaf_capacity = p.leaf_capacity;
  BTree t(cfg);
  std::map<std::string, std::string> model;
  Rng rng(p.seed);

  for (int step = 0; step < 4000; ++step) {
    const std::string key =
        EncodeKeyU64(rng.Uniform(static_cast<uint64_t>(p.key_space)));
    const uint64_t op = rng.Uniform(10);
    if (op < 5) {  // insert
      const std::string val = rng.AlphaString(1, 6);
      const bool fresh = model.find(key) == model.end();
      Status st = t.Insert(key, val);
      ASSERT_EQ(st.ok(), fresh);
      if (fresh) model[key] = val;
    } else if (op < 7) {  // delete
      const bool present = model.erase(key) > 0;
      Status st = t.Delete(key);
      ASSERT_EQ(st.ok(), present);
    } else if (op < 9) {  // get
      auto r = t.Get(key);
      auto mit = model.find(key);
      ASSERT_EQ(r.ok(), mit != model.end());
      if (r.ok()) {
        ASSERT_EQ(*r, mit->second);
      }
    } else {  // update
      const std::string val = rng.AlphaString(1, 6);
      const bool present = model.find(key) != model.end();
      Status st = t.Update(key, val);
      ASSERT_EQ(st.ok(), present);
      if (present) model[key] = val;
    }
    ASSERT_EQ(t.size(), model.size());
  }
  ASSERT_TRUE(t.CheckInvariants().ok());

  // Full scan equality.
  auto mit = model.begin();
  for (auto it = t.Begin(); it.Valid(); it.Next(), ++mit) {
    ASSERT_NE(mit, model.end());
    ASSERT_EQ(it.key().ToString(), mit->first);
    ASSERT_EQ(it.value().ToString(), mit->second);
  }
  ASSERT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeModelTest,
    ::testing::Values(ModelParams{1, 4, 4, 64},     // tiny nodes, hot keys
                      ModelParams{2, 4, 4, 100000},  // tiny nodes, sparse
                      ModelParams{3, 64, 64, 512},   // default nodes
                      ModelParams{4, 8, 32, 2048},   // asymmetric
                      ModelParams{5, 128, 16, 300},  // wide inner
                      ModelParams{6, 3, 2, 128}),    // minimum legal sizes
    [](const ::testing::TestParamInfo<ModelParams>& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_f" +
             std::to_string(p.inner_fanout) + "_l" +
             std::to_string(p.leaf_capacity) + "_k" +
             std::to_string(p.key_space);
    });

// ------------------------------------------------------------------ codec --

TEST(CodecTest, U64KeyRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 255ULL, 65536ULL, ~0ULL}) {
    EXPECT_EQ(DecodeKeyU64(EncodeKeyU64(v)), v);
  }
}

TEST(CodecTest, U64KeyOrderMatchesNumericOrder) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.Next(), b = rng.Next();
    EXPECT_EQ(a < b, EncodeKeyU64(a) < EncodeKeyU64(b));
  }
}

TEST(CodecTest, PairKeyOrdersLexicographically) {
  EXPECT_LT(EncodeKeyU64Pair(1, 99), EncodeKeyU64Pair(2, 0));
  EXPECT_LT(EncodeKeyU64Pair(1, 5), EncodeKeyU64Pair(1, 6));
  EXPECT_LT(EncodeKeyU64Triple(1, 2, 3), EncodeKeyU64Triple(1, 2, 4));
}

TEST(CodecTest, RidRoundTrip) {
  storage::Rid rid;
  rid.page_id = 0x1122334455667788ULL;
  rid.slot = 0xABCD;
  storage::Rid back = DecodeRid(EncodeRid(rid));
  EXPECT_EQ(back.page_id, rid.page_id);
  EXPECT_EQ(back.slot, rid.slot);
}

}  // namespace
}  // namespace bionicdb::index
