// Tests for the dark-silicon analytic models (paper §2 / Figure 1).
#include <gtest/gtest.h>

#include "darksilicon/amdahl.h"
#include "darksilicon/power.h"

namespace bionicdb::darksilicon {
namespace {

TEST(AmdahlTest, NoSerialWorkScalesLinearly) {
  EXPECT_DOUBLE_EQ(AmdahlSpeedup(0.0, 64), 64.0);
  EXPECT_DOUBLE_EQ(AmdahlUtilization(0.0, 1024), 1.0);
}

TEST(AmdahlTest, AllSerialNeverSpeedsUp) {
  EXPECT_DOUBLE_EQ(AmdahlSpeedup(1.0, 1024), 1.0);
  EXPECT_NEAR(AmdahlUtilization(1.0, 1024), 1.0 / 1024, 1e-12);
}

TEST(AmdahlTest, SpeedupBoundedBy1OverS) {
  EXPECT_LT(AmdahlSpeedup(0.01, 1e9), 100.0);
  EXPECT_NEAR(AmdahlSpeedup(0.01, 1e9), 100.0, 0.1);
}

TEST(AmdahlTest, PaperNarrativeNumbers) {
  // "achieving 0.1% serial work arguably suffices for today's hardware":
  // utilization of a 64-core chip at s=0.1% is ~94%.
  EXPECT_GT(AmdahlUtilization(0.001, 64), 0.9);
  // "next-generation hardware with perhaps a thousand cores demands that
  // the serial fraction of work decreases by roughly two orders of
  // magnitude": at 1024 cores, s=0.1% wastes half the chip...
  EXPECT_LT(AmdahlUtilization(0.001, 1024), 0.55);
  // ...but s=0.001% (two orders less) restores >90% utilization.
  EXPECT_GT(AmdahlUtilization(0.00001, 1024), 0.9);
}

TEST(AmdahlTest, UtilizationMonotoneInSerialFraction) {
  double prev = 1.0;
  for (double s : {0.0001, 0.001, 0.01, 0.1, 0.5}) {
    double u = AmdahlUtilization(s, 1024);
    EXPECT_LT(u, prev);
    prev = u;
  }
}

TEST(HillMartyTest, PerfIsSqrt) {
  EXPECT_DOUBLE_EQ(HillMartyPerf(1), 1.0);
  EXPECT_DOUBLE_EQ(HillMartyPerf(16), 4.0);
}

TEST(HillMartyTest, SymmetricMatchesPaperShape) {
  // Hill & Marty, fig 2: n=256, s=0.5%% ... sanity relations only:
  // r=1 equals plain Amdahl.
  EXPECT_NEAR(HillMartySymmetricSpeedup(0.1, 256, 1), AmdahlSpeedup(0.1, 256),
              1e-9);
  // For very parallel work, small cores win; for serial work, big cores.
  EXPECT_GT(HillMartySymmetricSpeedup(0.001, 256, 1),
            HillMartySymmetricSpeedup(0.001, 256, 256));
  EXPECT_GT(HillMartySymmetricSpeedup(0.9, 256, 256),
            HillMartySymmetricSpeedup(0.9, 256, 1));
}

TEST(HillMartyTest, AsymmetricBeatsSymmetricAtModerateSerial) {
  const double s = 0.05;
  const double n = 256;
  double best_sym = 0;
  for (double r : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    best_sym = std::max(best_sym, HillMartySymmetricSpeedup(s, n, r));
  }
  const double r_best = BestAsymmetricBigCore(s, n);
  EXPECT_GE(HillMartyAsymmetricSpeedup(s, n, r_best), best_sym);
}

TEST(HillMartyTest, DynamicDominatesAsymmetric) {
  for (double s : {0.001, 0.01, 0.1, 0.5}) {
    const double r = BestAsymmetricBigCore(s, 256);
    EXPECT_GE(HillMartyDynamicSpeedup(s, 256) + 1e-9,
              HillMartyAsymmetricSpeedup(s, 256, r));
  }
}

TEST(DarkSiliconModelTest, PowerableFractionTimeline) {
  DarkSiliconModel m(0.4);
  EXPECT_DOUBLE_EQ(m.PowerableFraction(2011), 1.0);
  EXPECT_NEAR(m.PowerableFraction(2018), 0.8, 1e-9);
  // One generation later: 0.8 * 0.6 = 0.48.
  EXPECT_NEAR(m.PowerableFraction(2020), 0.48, 1e-9);
  EXPECT_NEAR(m.PowerableFraction(2022), 0.288, 1e-9);
}

TEST(DarkSiliconModelTest, ShrinkRateBandsMatchPaper) {
  // Paper: "usable fraction shrinking by 30-50% each generation".
  DarkSiliconModel low(0.3), high(0.5);
  EXPECT_NEAR(low.PowerableFraction(2020), 0.8 * 0.7, 1e-9);
  EXPECT_NEAR(high.PowerableFraction(2020), 0.8 * 0.5, 1e-9);
}

TEST(DarkSiliconModelTest, ProjectionDoublesCores) {
  DarkSiliconModel m;
  auto gens = m.Project(2018);
  ASSERT_EQ(gens.size(), 4u);  // 2011, 2013, 2015, 2017
  EXPECT_EQ(gens[0].cores, 64);
  EXPECT_EQ(gens[1].cores, 128);
  EXPECT_EQ(gens[3].cores, 512);
  EXPECT_EQ(gens[0].year, 2011);
}

TEST(DarkSiliconModelTest, EffectiveUtilizationCappedByPower) {
  DarkSiliconModel m;
  // Perfectly parallel software still cannot use dark transistors in 2018.
  EXPECT_NEAR(m.EffectiveUtilization(0.0, 1024, 2018), 0.8, 0.01);
  // In 2011 the chip is fully powerable.
  EXPECT_NEAR(m.EffectiveUtilization(0.0, 64, 2011), 1.0, 1e-9);
}

TEST(Figure1Test, ReproducesPaperShape) {
  DarkSiliconModel m;
  auto rows = ComputeFigure1(m);
  ASSERT_EQ(rows.size(), 4u);

  // Rows ordered 10%, 1%, 0.1%, 0.01% serial.
  EXPECT_DOUBLE_EQ(rows[0].serial_fraction, 0.10);
  EXPECT_DOUBLE_EQ(rows[3].serial_fraction, 0.0001);

  // 2011/64-core: 0.1% serial keeps >90% of the chip busy (the paper:
  // "arguably suffices for today's hardware").
  EXPECT_GT(rows[2].utilization_2011_64c, 0.9);
  // 2018/1024-core: the same 0.1% serial wastes over half the chip.
  EXPECT_LT(rows[2].utilization_2018_1024c, 0.5);
  // Even 0.01% serial cannot exceed the 80% power envelope.
  EXPECT_LE(rows[3].utilization_2018_1024c, 0.8 + 1e-9);
  EXPECT_GT(rows[3].utilization_2018_1024c, 0.65);

  // Utilization strictly improves as serial fraction drops, on both chips.
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].utilization_2011_64c, rows[i - 1].utilization_2011_64c);
    EXPECT_GT(rows[i].utilization_2018_1024c,
              rows[i - 1].utilization_2018_1024c);
  }
}

}  // namespace
}  // namespace bionicdb::darksilicon
