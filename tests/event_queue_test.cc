// Unit + differential property tests for the calendar event queue: the
// hierarchical timer wheel must pop in exactly (time, seq) order — the
// determinism contract the whole simulator rests on — so every test here
// checks it against a trivially-correct reference model.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace bionicdb::sim {
namespace {

/// Reference model: the std::priority_queue the calendar queue replaced,
/// ordered by (time, seq) exactly like the old Simulator event heap.
class HeapQueue {
 public:
  void Push(SimTime at, int value) {
    heap_.push({at, next_seq_++, value});
  }
  bool empty() const { return heap_.empty(); }
  SimTime NextTime() const { return heap_.top().at; }
  int Pop() {
    const int v = heap_.top().value;
    heap_.pop();
    return v;
  }

 private:
  struct Ev {
    SimTime at;
    uint64_t seq;
    int value;
    bool operator>(const Ev& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<Ev>> heap_;
  uint64_t next_seq_ = 0;
};

TEST(CalendarQueueTest, PopsInTimeThenScheduleOrder) {
  CalendarQueue<int> q;
  q.Push(300, 1);
  q.Push(100, 2);
  q.Push(300, 3);
  q.Push(0, 4);  // same-tick: rides the ring
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.NextTime(), 0);
  EXPECT_EQ(q.Pop(), 4);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.now(), 100);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 300);
}

TEST(CalendarQueueTest, SameTickPushDuringDrainStaysFifo) {
  CalendarQueue<int> q;
  q.Push(50, 0);
  EXPECT_EQ(q.Pop(), 0);
  // "ScheduleNow during drain": pushes at now() interleaved with pops.
  q.Push(50, 1);
  q.Push(50, 2);
  EXPECT_EQ(q.Pop(), 1);
  q.Push(50, 3);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_TRUE(q.empty());
}

// Regression: an entry almost one wheel revolution out can share a slot
// with a near-term entry (equal slot bits via carry from lower bits). The
// drain must neither invalidate its own iteration re-inserting it, nor may
// NextTime report the far entry while a nearer slot is pending.
TEST(CalendarQueueTest, CarryCaseSharingSlotWithNearEntry) {
  CalendarQueue<int> q;
  // Wheel 1 granularity is 2^12, revolution 2^20. Both 5000 and 4200 land
  // in wheel-1 slot 1; popping the 4200 advances now() INTO slot 1, making
  // it the bi-modal now()-slot.
  q.Push(5000, 0);
  q.Push(4200, 1);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.now(), 4200);
  // delta 1048500 < 2^20 -> wheel 1; slot bits of 1052700 are
  // (1052700 >> 12) & 255 == 1: one revolution out, same slot as 5000.
  q.Push(1052700, 2);
  q.Push(9000, 3);  // wheel 1, slot 2 — nearer in time, later in slot scan
  EXPECT_EQ(q.Pop(), 0);
  EXPECT_EQ(q.now(), 5000);
  EXPECT_EQ(q.NextTime(), 9000);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.now(), 1052700);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, OverflowLadderHoldsMultiSecondTimers) {
  CalendarQueue<int> q;
  // 5 s sits in the coarsest wheel (granularity 2^28 ns); 100 s exceeds
  // the wheels' ~69 s horizon and rides the overflow min-heap.
  const SimTime five_s = 5'000'000'000;
  q.Push(five_s, 0);
  q.Push(five_s, 1);
  q.Push(100'000'000'000, 2);
  q.Push(400, 3);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.Pop(), 0);  // equal timestamps: schedule order
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.now(), five_s);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, AdvanceToSkipsIdleGapsWithoutDroppingEvents) {
  CalendarQueue<int> q;
  q.Push(1'000'000, 0);
  q.AdvanceTo(500'000);
  EXPECT_EQ(q.now(), 500'000);
  EXPECT_EQ(q.NextTime(), 1'000'000);
  q.AdvanceTo(1'000'000);  // exactly at the event: it stays pending
  EXPECT_EQ(q.now(), 1'000'000);
  EXPECT_EQ(q.Pop(), 0);
  q.AdvanceTo(900'000);  // past target: no-op, never rewinds
  EXPECT_EQ(q.now(), 1'000'000);
}

/// Schedule-delta distributions mirroring the model: mostly ScheduleNow
/// (semaphore handoffs, queue wakeups), then link/DRAM (hundreds of ns),
/// PCIe (~2 us), SAS/SSD (60 us – 5 ms), and rare multi-second backoffs.
SimTime RandomDelta(Rng& rng) {
  const uint64_t r = rng.Uniform(100);
  if (r < 55) return 0;
  if (r < 75) return 1 + static_cast<SimTime>(rng.Uniform(2000));
  if (r < 90) return 1 + static_cast<SimTime>(rng.Uniform(300'000));
  if (r < 99) return 1 + static_cast<SimTime>(rng.Uniform(5'000'000));
  // Rare tail reaching past the wheels' ~69 s horizon into the overflow
  // ladder, so the differential tests cover every tier of the structure.
  return 1 + static_cast<SimTime>(rng.Uniform(80'000'000'000));
}

// The core property: any interleaving of pushes and pops produces exactly
// the reference heap's pop order, including bursts of equal timestamps and
// same-tick pushes during drain.
TEST(CalendarQueueTest, DifferentialVsReferenceHeap) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x9E3779B9u);
    CalendarQueue<int> q;
    HeapQueue ref;
    int next_value = 0;
    int pops = 0;
    const int kOps = 20000;
    for (int op = 0; op < kOps || !q.empty(); ++op) {
      const bool can_push = op < kOps;
      if (can_push && (q.empty() || rng.Uniform(100) < 60)) {
        // Occasional burst of equal timestamps across push sites.
        const int burst = rng.Uniform(100) < 10 ? 1 + rng.Uniform(8) : 1;
        const SimTime at = q.now() + RandomDelta(rng);
        for (int b = 0; b < static_cast<int>(burst); ++b) {
          q.Push(at, next_value);
          ref.Push(at, next_value);
          ++next_value;
        }
      } else {
        ASSERT_EQ(q.NextTime(), ref.NextTime());
        ASSERT_EQ(q.Pop(), ref.Pop()) << "seed " << seed << " pop " << pops;
        ++pops;
      }
    }
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(pops, next_value);
  }
}

// Same property through the RunUntil-style interface: AdvanceTo to
// deadlines that sometimes land exactly on, sometimes between, events.
TEST(CalendarQueueTest, DifferentialWithAdvanceTo) {
  Rng rng(0xC0FFEE);
  CalendarQueue<int> q;
  HeapQueue ref;
  int next_value = 0;
  for (int round = 0; round < 2000; ++round) {
    const int pushes = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < pushes; ++i) {
      const SimTime at = q.now() + RandomDelta(rng);
      q.Push(at, next_value);
      ref.Push(at, next_value);
      ++next_value;
    }
    const int pops = static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < pops && !q.empty(); ++i) {
      ASSERT_EQ(q.Pop(), ref.Pop());
    }
    if (!q.empty() && rng.Uniform(100) < 20) {
      // Advance into the idle gap, at most up to the next event.
      const SimTime next = q.NextTime();
      const SimTime target =
          rng.Uniform(2) ? next : q.now() + (next - q.now()) / 2;
      q.AdvanceTo(target);
      ASSERT_EQ(q.NextTime(), ref.NextTime());
    }
  }
  while (!q.empty()) ASSERT_EQ(q.Pop(), ref.Pop());
  EXPECT_TRUE(ref.empty());
}

}  // namespace
}  // namespace bionicdb::sim
