// Property tests for end-to-end durability: for random workloads across
// engine modes and seeds, replaying the durable log into a freshly loaded
// engine must reproduce the exact logical state of the original — and
// recovery must tolerate arbitrary torn tails.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/parallel_for.h"
#include "engine/engine.h"
#include "index/codec.h"
#include "sim/simulator.h"
#include "wal/recovery.h"
#include "workload/crash_harness.h"
#include "workload/driver.h"
#include "workload/tatp.h"

namespace bionicdb {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::EngineMode;
using sim::Simulator;
using sim::Task;

struct CrashParams {
  EngineMode mode;
  uint64_t seed;
};

class RecoveryPropertyTest : public ::testing::TestWithParam<CrashParams> {};

EngineConfig ConfigFor(EngineMode mode) {
  switch (mode) {
    case EngineMode::kConventional:
      return EngineConfig::Conventional();
    case EngineMode::kDora: {
      EngineConfig c = EngineConfig::Dora();
      c.num_partitions = 4;
      return c;
    }
    case EngineMode::kBionic: {
      EngineConfig c = EngineConfig::Bionic();
      c.num_partitions = 4;
      return c;
    }
  }
  return EngineConfig::Dora();
}

/// Recovery target applying into fresh tables' base storage.
class DbTarget : public wal::RecoveryTarget {
 public:
  explicit DbTarget(engine::Database* db) : db_(db) {}
  void RedoInsert(uint32_t t, Slice k, Slice v) override {
    BIONICDB_CHECK(db_->GetTable(t)->BasePut(k, v).ok());
  }
  void RedoUpdate(uint32_t t, Slice k, Slice v) override {
    BIONICDB_CHECK(db_->GetTable(t)->BasePut(k, v).ok());
  }
  void RedoDelete(uint32_t t, Slice k) override {
    (void)db_->GetTable(t)->BaseDelete(k);
  }

 private:
  engine::Database* db_;
};

std::map<std::string, std::string> LogicalState(
    workload::TatpWorkload& tatp) {
  std::map<std::string, std::string> state;
  for (auto* t : {tatp.subscriber(), tatp.access_info(),
                  tatp.special_facility(), tatp.call_forwarding()}) {
    for (auto& [k, v] : t->ScanAll()) state[t->name() + "/" + k] = v;
  }
  return state;
}

TEST_P(RecoveryPropertyTest, ReplayingDurableLogReproducesFinalState) {
  const CrashParams p = GetParam();

  // --- Original run: a mixed TATP workload with writes and aborts. -------
  Simulator sim;
  Engine engine(&sim, ConfigFor(p.mode));
  workload::TatpConfig wcfg;
  wcfg.subscribers = 150;
  wcfg.seed = p.seed;
  workload::TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  workload::DriverConfig dcfg;
  dcfg.clients = 4;
  dcfg.warmup_txns = 0;
  dcfg.measured_txns = 250;
  sim.Spawn(workload::RunClosedLoop(
      &engine, [&]() { return tatp.NextTransaction(); }, dcfg, nullptr));
  sim.Run();
  const auto original = LogicalState(tatp);

  // Every commit waits for durability, so the durable prefix contains every
  // committed transaction: recovery from it must reproduce `original`.
  Simulator sim2;
  Engine fresh(&sim2, ConfigFor(p.mode));
  workload::TatpConfig wcfg2 = wcfg;  // identical initial population
  workload::TatpWorkload tatp2(&fresh, wcfg2);
  ASSERT_TRUE(tatp2.Load().ok());
  DbTarget target(&fresh.db());
  wal::RecoveryStats stats;
  ASSERT_TRUE(
      wal::Recover(engine.log()->durable_prefix(), &target, &stats).ok());

  // Compare base-data logical state (the fresh engine has no overlay
  // writes, so ScanAll == base state).
  const auto recovered = LogicalState(tatp2);
  EXPECT_EQ(recovered.size(), original.size());
  EXPECT_EQ(recovered, original);
}

TEST_P(RecoveryPropertyTest, TornTailsNeverCrashAndStayPrefixConsistent) {
  const CrashParams p = GetParam();
  Simulator sim;
  Engine engine(&sim, ConfigFor(p.mode));
  workload::TatpConfig wcfg;
  wcfg.subscribers = 80;
  wcfg.seed = p.seed;
  workload::TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  workload::DriverConfig dcfg;
  dcfg.clients = 2;
  dcfg.warmup_txns = 0;
  dcfg.measured_txns = 120;
  sim.Spawn(workload::RunClosedLoop(
      &engine, [&]() { return tatp.NextTransaction(); }, dcfg, nullptr));
  sim.Run();

  const std::string& full = engine.log()->buffer();
  Rng rng(p.seed ^ 0xC4A5);
  uint64_t last_commits = 0;
  for (int cut = 0; cut < 25; ++cut) {
    const size_t len = rng.Uniform(full.size() + 1);
    // Recover from an arbitrary truncation: must never fail or crash.
    Simulator simf;
    Engine fresh(&simf, ConfigFor(p.mode));
    workload::TatpWorkload tatp2(&fresh, wcfg);
    ASSERT_TRUE(tatp2.Load().ok());
    DbTarget target(&fresh.db());
    wal::RecoveryStats stats;
    ASSERT_TRUE(wal::Recover(Slice(full.data(), len), &target, &stats).ok())
        << "cut at " << len;
    (void)last_commits;
    last_commits = stats.committed_txns;
  }
  // Recovery of the complete log sees every committed transaction.
  Simulator simf;
  Engine fresh(&simf, ConfigFor(p.mode));
  workload::TatpWorkload tatp2(&fresh, wcfg);
  ASSERT_TRUE(tatp2.Load().ok());
  DbTarget target(&fresh.db());
  wal::RecoveryStats stats;
  ASSERT_TRUE(wal::Recover(Slice(full), &target, &stats).ok());
  EXPECT_EQ(LogicalState(tatp2), LogicalState(tatp));
}

// Randomized crash-point sweep: for each (mode, seed), cut the log at 12
// random points, mangle the tail three ways (clean cut, zero-filled
// preallocated tail, bit-flipped final record), and demand that recovery
// reproduces exactly the committed-transaction oracle for the surviving
// prefix. 36 points per instantiation x 6 instantiations == 216 crash
// points across the sweep.
TEST_P(RecoveryPropertyTest, CrashPointCorporaMatchCommittedOracle) {
  const CrashParams p = GetParam();
  workload::CrashHarnessConfig cfg;
  cfg.mode = p.mode;
  cfg.seed = p.seed;
  cfg.clients = 2;
  cfg.txns = 120;
  cfg.scale = 80;
  workload::CrashHarness harness(cfg);
  const workload::CrashRunResult& run = harness.Run();
  ASSERT_GT(run.commits, 0u);
  ASSERT_GT(run.log.size(), 0u);

  const workload::TailFault corpus[] = {workload::TailFault::kCleanCut,
                                        workload::TailFault::kZeroFill,
                                        workload::TailFault::kBitFlip};
  Rng rng(p.seed ^ 0xFA017u);
  std::vector<workload::CrashHarness::CrashPoint> points;
  for (int i = 0; i < 12; ++i) {
    const size_t cut = rng.Uniform(run.log.size() + 1);
    for (workload::TailFault fault : corpus) {
      points.push_back({cut, fault, p.seed + static_cast<uint64_t>(i)});
    }
  }
  // Checked through the deterministic multi-core runner: each point
  // recovers a fresh engine on a worker thread; results come back in point
  // order, identical to the old serial loop for any job count.
  const std::vector<std::string> failures =
      harness.CheckCrashPoints(points, common::DefaultJobs());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(failures[i], "")
        << "point " << i << " cut=" << points[i].cut << " fault="
        << workload::TailFaultName(points[i].fault);
  }
}

// Wait-die contention stress: hot-key exclusive locks force waits and
// wait-die aborts; once every client drains, the lock table must be fully
// reclaimed (no leaked slots or CondVars from dying waiters).
TEST(LockDrainStressTest, HotKeyContentionLeavesEmptyLockTable) {
  Simulator sim;
  Engine engine(&sim, EngineConfig::Conventional());
  engine::Table* table = engine.CreateTable("hot");
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) {
    keys.push_back("k" + std::to_string(i));
    ASSERT_TRUE(engine.LoadRow(table, keys.back(), "val-00000000").ok());
  }
  engine.Start();

  Rng rng(77);
  for (int c = 0; c < 16; ++c) {
    sim.Spawn([](Engine* eng, engine::Table* t,
                 const std::vector<std::string>* keys, Rng* rng,
                 int n) -> Task<> {
      for (int i = 0; i < n; ++i) {
        const size_t a = rng->Uniform(keys->size());
        const size_t b = rng->Uniform(keys->size());
        uint64_t prio = 0;
        for (int attempt = 0; attempt < 30; ++attempt) {
          Engine::TxnSpec spec;
          Engine::Phase phase;
          std::vector<size_t> picks = {a};
          if (b != a) picks.push_back(b);
          for (const size_t ki : picks) {
            Engine::TxnStep step;
            step.table = t;
            step.keys = {(*keys)[ki]};
            const std::string key = (*keys)[ki];
            step.fn = [eng, t, key](
                          Engine::ExecContext& ctx) -> Task<Status> {
              co_return co_await eng->Update(ctx, t, key, "val-11111111");
            };
            phase.push_back(std::move(step));
          }
          spec.phases.push_back(std::move(phase));
          const Status st = co_await eng->Execute(std::move(spec), 0, &prio);
          if (!st.IsAborted()) break;
          co_await sim::Delay{eng->simulator(), 20000 * (attempt + 1)};
        }
      }
    }(&engine, table, &keys, &rng, 40));
  }
  sim.Run();

  const txn::LockStats& ls = engine.lock_manager()->stats();
  EXPECT_GT(ls.waits, 0u);
  EXPECT_GT(ls.wait_die_aborts, 0u);
  // The drained lock table holds no keys: every slot (and CondVar) created
  // under contention was reclaimed.
  EXPECT_EQ(engine.lock_manager()->num_locked_keys(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryPropertyTest,
    ::testing::Values(CrashParams{EngineMode::kConventional, 11},
                      CrashParams{EngineMode::kConventional, 12},
                      CrashParams{EngineMode::kDora, 21},
                      CrashParams{EngineMode::kDora, 22},
                      CrashParams{EngineMode::kBionic, 31},
                      CrashParams{EngineMode::kBionic, 32}),
    [](const ::testing::TestParamInfo<CrashParams>& info) {
      return std::string(engine::EngineModeName(info.param.mode)) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace bionicdb
