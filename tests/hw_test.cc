// Tests for the platform model (Figure 2) and the four FPGA units.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hw/cost_model.h"
#include "hw/log_unit.h"
#include "hw/platform.h"
#include "hw/queue_engine.h"
#include "hw/scanner_unit.h"
#include "hw/tree_probe_unit.h"

namespace bionicdb::hw {
namespace {

using sim::Delay;
using sim::Simulator;
using sim::Task;

// ---------------------------------------------------------------- Platform --

TEST(PlatformSpecTest, ConveyHC2MatchesFigure2) {
  auto s = PlatformSpec::ConveyHC2();
  EXPECT_TRUE(s.has_fpga);
  EXPECT_DOUBLE_EQ(s.sg_dram.gbps, 80.0);
  EXPECT_EQ(s.sg_dram.latency_ns, 400);
  EXPECT_DOUBLE_EQ(s.host_dram.gbps, 20.0);
  EXPECT_EQ(s.host_dram.latency_ns, 400);
  EXPECT_DOUBLE_EQ(s.pcie.gbps, 4.0);
  EXPECT_EQ(2 * s.pcie.latency_ns, 2000);  // 2us round trip
  EXPECT_DOUBLE_EQ(s.sas_disk.gbps, 1.5);  // 12 Gbps
  EXPECT_EQ(s.sas_disk.latency_ns, 5 * kMillisecond);
  EXPECT_DOUBLE_EQ(s.ssd.gbps, 0.5);       // 500 MBps
  EXPECT_EQ(s.ssd.latency_ns, 20 * kMicrosecond);
}

TEST(PlatformSpecTest, CommodityServerHasNoFpga) {
  auto s = PlatformSpec::CommodityServer();
  EXPECT_FALSE(s.has_fpga);
  EXPECT_DOUBLE_EQ(s.sg_dram.gbps, s.host_dram.gbps);
}

TEST(PlatformTest, PcieRoundTripIsTwoMicroseconds) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  SimTime t = -1;
  sim.Spawn([](Platform* p, Simulator* s, SimTime* t) -> Task<> {
    co_await p->pcie().RoundTrip();
    *t = s->Now();
  }(&p, &sim, &t));
  sim.Run();
  EXPECT_EQ(t, 2 * kMicrosecond);
}

TEST(PlatformTest, EnergyComponentsRegistered) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  EXPECT_GE(p.cpu_component(), 0);
  EXPECT_GE(p.fpga_component(), 0);
  EXPECT_EQ(p.meter().FindComponent("cpu"), p.cpu_component());
  EXPECT_EQ(p.meter().FindComponent("pcie"), p.pcie_component());
}

// --------------------------------------------------------------- CostModel --

TEST(CostModelTest, BtreeProbeScalesWithLevels) {
  CostModel cm;
  const double one = cm.BtreeProbeNs(1, 256);
  const double four = cm.BtreeProbeNs(4, 256);
  EXPECT_GT(four, 3 * one * 0.8);
  EXPECT_GT(one, 0);
}

TEST(CostModelTest, LeafVisitsCostMoreThanInner) {
  CostModel cm;
  EXPECT_GT(cm.BtreeNodeVisitNs(256, true), cm.BtreeNodeVisitNs(256, false));
}

TEST(CostModelTest, LogInsertGrowsWithContention) {
  CostModel cm;
  const double solo = cm.LogInsertNs(100, 1, 1);
  const double crowded = cm.LogInsertNs(100, 16, 1);
  const double multisocket = cm.LogInsertNs(100, 16, 4);
  EXPECT_GT(crowded, solo);
  EXPECT_GT(multisocket, crowded);
}

TEST(CostModelTest, LogInsertGrowsWithSize) {
  CostModel cm;
  EXPECT_GT(cm.LogInsertNs(1000, 1, 1), cm.LogInsertNs(10, 1, 1));
}

TEST(CostModelTest, ComponentNamesMatchFigure3Legend) {
  EXPECT_STREQ(ComponentName(Component::kBtree), "Btree mgmt");
  EXPECT_STREQ(ComponentName(Component::kBpool), "Bpool mgmt");
  EXPECT_STREQ(ComponentName(Component::kLog), "Log mgmt");
  EXPECT_STREQ(ComponentName(Component::kXct), "Xct mgmt");
  EXPECT_STREQ(ComponentName(Component::kDora), "Dora");
  EXPECT_STREQ(ComponentName(Component::kFrontend), "Front-end");
  EXPECT_STREQ(ComponentName(Component::kOther), "Other");
}

TEST(BreakdownTest, PercentagesSumTo100) {
  Breakdown b;
  b.Charge(Component::kBtree, 400);
  b.Charge(Component::kLog, 350);
  b.Charge(Component::kOther, 250);
  EXPECT_EQ(b.TotalNs(), 1000);
  double total_pct = 0;
  for (int i = 0; i < kNumComponents; ++i) {
    total_pct += b.Percent(static_cast<Component>(i));
  }
  EXPECT_NEAR(total_pct, 100.0, 1e-9);
  EXPECT_NEAR(b.Percent(Component::kBtree), 40.0, 1e-9);
}

TEST(BreakdownTest, MergeAccumulates) {
  Breakdown a, b;
  a.Charge(Component::kDora, 100);
  b.Charge(Component::kDora, 300);
  a.Merge(b);
  EXPECT_EQ(a.ns(Component::kDora), 400);
}

// ----------------------------------------------------------- TreeProbeUnit --

TEST(TreeProbeUnitTest, ProbeLatencyIsLevelsTimesMemoryAccess) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  TreeProbeConfig cfg;
  TreeProbeUnit unit(&p, cfg);
  SimTime t = -1;
  sim.Spawn([](TreeProbeUnit* u, Simulator* s, SimTime* t) -> Task<> {
    co_await u->Probe(4);
    *t = s->Now();
  }(&unit, &sim, &t));
  sim.Run();
  // 4 levels x (400ns SG access + ~1ns wire + 20ns compute) ~ 1.7us.
  EXPECT_GT(t, 4 * 400);
  EXPECT_LT(t, 4 * 500);
  EXPECT_EQ(unit.probes_completed(), 1u);
  EXPECT_EQ(unit.node_visits(), 4u);
}

TEST(TreeProbeUnitTest, ContextsLimitConcurrency) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  TreeProbeConfig cfg;
  cfg.contexts = 4;
  TreeProbeUnit unit(&p, cfg);
  for (int i = 0; i < 32; ++i) {
    sim.Spawn([](TreeProbeUnit* u) -> Task<> { co_await u->Probe(3); }(&unit));
  }
  sim.Run();
  EXPECT_EQ(unit.probes_completed(), 32u);
  EXPECT_LE(unit.max_active(), 4);
}

TEST(TreeProbeUnitTest, ThroughputSaturatesAroundContextCount) {
  // The §5.3 claim: with a dozen-ish contexts, adding offered concurrency
  // beyond the context count stops helping.
  auto run = [](int offered) {
    Simulator sim;
    Platform p(&sim, PlatformSpec::ConveyHC2());
    TreeProbeConfig cfg;
    cfg.contexts = 12;
    TreeProbeUnit unit(&p, cfg);
    const int kProbesPerClient = 50;
    for (int i = 0; i < offered; ++i) {
      sim.Spawn([](TreeProbeUnit* u, int n) -> Task<> {
        for (int j = 0; j < n; ++j) co_await u->Probe(4);
      }(&unit, kProbesPerClient));
    }
    sim.Run();
    return static_cast<double>(offered) * kProbesPerClient /
           static_cast<double>(sim.Now());  // probes per ns
  };
  const double t1 = run(1);
  const double t8 = run(8);
  const double t12 = run(12);
  const double t32 = run(32);
  EXPECT_GT(t8, 6 * t1);           // near-linear until the context count
  EXPECT_NEAR(t32, t12, t12 * 0.1);  // flat beyond it
}

TEST(TreeProbeUnitTest, HostProbeAddsPcieLegs) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  TreeProbeUnit unit(&p);
  SimTime t = -1;
  sim.Spawn([](TreeProbeUnit* u, Simulator* s, SimTime* t) -> Task<> {
    co_await u->ProbeFromHost(4);
    *t = s->Now();
  }(&unit, &sim, &t));
  sim.Run();
  EXPECT_GT(t, 2 * 1000 + 4 * 400);  // two PCIe legs + the probe
}

// ---------------------------------------------------------- LogInsertionUnit --

TEST(LogUnitTest, SingleInsertCompletes) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  LogInsertionUnit unit(&p);
  SimTime t = -1;
  sim.Spawn([](LogInsertionUnit* u, Simulator* s, SimTime* t) -> Task<> {
    co_await u->Insert(120, 0);
    *t = s->Now();
  }(&unit, &sim, &t));
  sim.Run();
  EXPECT_GT(t, 0);
  EXPECT_EQ(unit.records(), 1u);
  EXPECT_EQ(unit.batches(), 1u);
}

TEST(LogUnitTest, AggregationBatchesConcurrentInserts) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  LogUnitConfig cfg;
  cfg.aggregation_window_ns = 500;
  LogInsertionUnit unit(&p, cfg);
  for (int i = 0; i < 10; ++i) {
    sim.Spawn([](Simulator* s, LogInsertionUnit* u, int i) -> Task<> {
      co_await Delay{s, i * 20};  // all inside one 500ns window
      co_await u->Insert(100, 0);
    }(&sim, &unit, i));
  }
  sim.Run();
  EXPECT_EQ(unit.records(), 10u);
  EXPECT_EQ(unit.batches(), 1u);
  EXPECT_DOUBLE_EQ(unit.MeanBatchRecords(), 10.0);
}

TEST(LogUnitTest, NoAggregationShipsEachRecord) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  LogUnitConfig cfg;
  cfg.aggregate = false;
  LogInsertionUnit unit(&p, cfg);
  for (int i = 0; i < 10; ++i) {
    sim.Spawn([](LogInsertionUnit* u) -> Task<> {
      co_await u->Insert(100, 0);
    }(&unit));
  }
  sim.Run();
  EXPECT_EQ(unit.batches(), 10u);
}

TEST(LogUnitTest, SocketsAggregateIndependently) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  LogUnitConfig cfg;
  cfg.sockets = 2;
  cfg.aggregation_window_ns = 500;
  LogInsertionUnit unit(&p, cfg);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 5; ++i) {
      sim.Spawn([](LogInsertionUnit* u, int sock) -> Task<> {
        co_await u->Insert(64, sock);
      }(&unit, s));
    }
  }
  sim.Run();
  EXPECT_EQ(unit.records(), 10u);
  EXPECT_EQ(unit.batches(), 2u);  // one batch per socket
}

TEST(LogUnitTest, FullBatchForcesFollowerToNextBatch) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  LogUnitConfig cfg;
  cfg.max_batch_bytes = 300;
  cfg.aggregation_window_ns = 400;
  LogInsertionUnit unit(&p, cfg);
  for (int i = 0; i < 4; ++i) {
    sim.Spawn([](LogInsertionUnit* u) -> Task<> {
      co_await u->Insert(100, 0);  // 116B framed; only 2 fit per batch
    }(&unit));
  }
  sim.Run();
  EXPECT_EQ(unit.records(), 4u);
  EXPECT_GE(unit.batches(), 2u);
}

// -------------------------------------------------------------- QueueEngine --

TEST(QueueEngineTest, OperationsAreCheapAndCounted) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  QueueEngine qe(&p);
  for (int i = 0; i < 100; ++i) {
    sim.Spawn([](QueueEngine* q) -> Task<> { co_await q->Operate(); }(&qe));
  }
  sim.Run();
  EXPECT_EQ(qe.operations(), 100u);
  // 100 ops at 4ns arbitration each: done within ~0.5us.
  EXPECT_LE(sim.Now(), 500);
  EXPECT_LT(qe.CpuPostCost(), 100);
}

// -------------------------------------------------------------- ScannerUnit --

TEST(ScannerUnitTest, ShipsOnlySelectedBytes) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  ScannerUnit scanner(&p);
  ScanTiming result;
  sim.Spawn([](ScannerUnit* sc, ScanTiming* out) -> Task<> {
    *out = (co_await sc->Scan(10 * kMiB, 0.02)).value();
  }(&scanner, &result));
  sim.Run();
  EXPECT_EQ(result.bytes_scanned, 10 * kMiB);
  EXPECT_NEAR(static_cast<double>(result.bytes_shipped),
              0.02 * 10 * static_cast<double>(kMiB),
              static_cast<double>(kMiB) * 0.01);
  EXPECT_LT(p.pcie().bytes_transferred(), 10 * kMiB / 10);
}

TEST(ScannerUnitTest, ScanTimeTracksSgBandwidth) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  ScannerUnit scanner(&p);
  sim.Spawn([](ScannerUnit* sc) -> Task<> {
    (void)co_await sc->Scan(80 * kMiB, 0.0);
  }(&scanner));
  sim.Run();
  // 80 MiB at 80 GB/s is ~1.05ms of wire time, plus per-chunk filter time.
  EXPECT_GT(sim.Now(), kMillisecond);
  EXPECT_LT(sim.Now(), 10 * kMillisecond);
}

TEST(ScannerUnitTest, FullProjectionShipsEverything) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  ScannerUnit scanner(&p);
  ScanTiming result;
  sim.Spawn([](ScannerUnit* sc, ScanTiming* out) -> Task<> {
    *out = (co_await sc->Scan(1 * kMiB, 1.0)).value();
  }(&scanner, &result));
  sim.Run();
  EXPECT_EQ(result.bytes_shipped, 1 * kMiB);
}

}  // namespace
}  // namespace bionicdb::hw

namespace bionicdb::hw {
namespace {

// --------------------------------------- string keys & multi-socket CPUs --

TEST(TreeProbeUnitTest, StringKeysCostMoreThanIntegers) {
  // §5.3: "a generic hardware tree probe engine that can handle both
  // integer and variable-length string keys". Longer keys stream through
  // the comparator in beats: slower per probe, same saturation shape.
  auto probe_time = [](uint32_t key_bytes) {
    sim::Simulator sim;
    Platform p(&sim, PlatformSpec::ConveyHC2());
    TreeProbeUnit unit(&p);
    sim.Spawn([](TreeProbeUnit* u, uint32_t kb) -> sim::Task<> {
      co_await u->Probe(4, kb);
    }(&unit, key_bytes));
    sim.Run();
    return sim.Now();
  };
  const SimTime int_key = probe_time(8);
  const SimTime str_key = probe_time(64);  // 15-char TATP numbers + slack
  EXPECT_GT(str_key, int_key);
  // Memory latency still dominates: strings cost beats, not multiples.
  EXPECT_LT(str_key, 2 * int_key);
}

TEST(PlatformTest, SocketsHaveIndependentCorePools) {
  sim::Simulator sim;
  PlatformSpec spec = PlatformSpec::CommodityServer();
  spec.cpu_sockets = 2;
  Platform p(&sim, spec);
  // Saturate socket 0; socket 1 work must not queue behind it.
  SimTime socket1_done = -1;
  for (int i = 0; i < spec.cpu_cores; ++i) {
    sim.Spawn([](Platform* p) -> sim::Task<> {
      co_await p->cpu(0).Attach();
      co_await p->cpu(0).Work(1000);
      p->cpu(0).Detach();
    }(&p));
  }
  sim.Spawn([](Platform* p, sim::Simulator* s, SimTime* done) -> sim::Task<> {
    co_await p->cpu(1).Attach();
    co_await p->cpu(1).Work(100);
    p->cpu(1).Detach();
    *done = s->Now();
  }(&p, &sim, &socket1_done));
  sim.Run();
  EXPECT_EQ(socket1_done, 100);  // never waited for socket 0's cores
  EXPECT_GT(p.TotalCpuUtilization(1000), 0.0);
}

}  // namespace
}  // namespace bionicdb::hw
