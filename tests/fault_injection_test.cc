// Fault injection: determinism of the injected fault stream, bounded
// retry/backoff on log-flush failures, degraded-mode metrics, crash-at-LSN
// durability freezing, and hardware-to-software fallback — all under real
// workload runs via the crash harness.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/engine.h"
#include "sim/fault.h"
#include "sim/simulator.h"
#include "workload/crash_harness.h"

namespace bionicdb {
namespace {

using engine::EngineMode;
using workload::CrashHarness;
using workload::CrashHarnessConfig;
using workload::CrashRunResult;
using workload::TailFault;

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour.

TEST(FaultInjectorTest, StreamsIndependentOfRegistrationAndInterleaving) {
  sim::FaultPlan plan;
  plan.seed = 42;
  plan.WithErrorRate("ssd", 0.3).WithErrorRate("pcie", 0.3);

  sim::FaultInjector a(plan);
  const int a_ssd = a.RegisterResource("ssd");
  const int a_pcie = a.RegisterResource("pcie");
  sim::FaultInjector b(plan);
  const int b_pcie = b.RegisterResource("pcie");
  const int b_ssd = b.RegisterResource("ssd");

  // Register in opposite order and interleave ops differently: each
  // resource's fault sequence must depend only on its own op index.
  std::vector<bool> a_faults;
  std::vector<bool> b_faults;
  for (int i = 0; i < 200; ++i) a_faults.push_back(!a.OnOp(a_ssd).ok());
  for (int i = 0; i < 200; ++i) (void)a.OnOp(a_pcie);
  for (int i = 0; i < 200; ++i) {
    (void)b.OnOp(b_pcie);
    b_faults.push_back(!b.OnOp(b_ssd).ok());
  }
  EXPECT_EQ(a_faults, b_faults);
  EXPECT_EQ(a.resource_injected("ssd"), b.resource_injected("ssd"));
  EXPECT_GT(a.resource_injected("ssd"), 0u);
  EXPECT_GT(a.resource_injected("pcie"), 0u);
}

TEST(FaultInjectorTest, FailOnceFiresExactlyOnceAtItsOpIndex) {
  sim::FaultPlan plan;
  plan.WithFailOnce("ssd", 3);
  sim::FaultInjector inj(plan);
  const int h = inj.RegisterResource("ssd");
  std::vector<int> failed_at;
  for (int i = 0; i < 10; ++i) {
    if (!inj.OnOp(h).ok()) failed_at.push_back(i);
  }
  EXPECT_EQ(failed_at, std::vector<int>{3});
  EXPECT_EQ(inj.total_injected(), 1u);
  EXPECT_EQ(inj.total_ops(), 10u);
}

TEST(FaultInjectorTest, CrashMakesEveryOpFail) {
  sim::FaultInjector inj(sim::FaultPlan{});
  const int h = inj.RegisterResource("ssd");
  EXPECT_TRUE(inj.OnOp(h).ok());
  inj.TriggerCrash("test");
  EXPECT_TRUE(inj.crashed());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(inj.OnOp(h).IsIOError());
}

// ---------------------------------------------------------------------------
// Whole-run properties via the crash harness.

CrashHarnessConfig BaseConfig(EngineMode mode, uint64_t seed) {
  CrashHarnessConfig cfg;
  cfg.mode = mode;
  cfg.seed = seed;
  cfg.clients = 2;
  cfg.txns = 120;
  cfg.scale = 80;
  return cfg;
}

TEST(FaultInjectionTest, SameSeedYieldsIdenticalTraceAndRecoveryStats) {
  CrashHarnessConfig cfg = BaseConfig(EngineMode::kDora, 5);
  cfg.fault_plan.seed = 99;
  cfg.fault_plan.WithErrorRate("ssd", 0.02).WithFailOnce("ssd", 4);

  CrashHarness h1(cfg);
  CrashHarness h2(cfg);
  const CrashRunResult& r1 = h1.Run();
  const CrashRunResult& r2 = h2.Run();

  EXPECT_EQ(r1.end_time_ns, r2.end_time_ns);
  EXPECT_EQ(r1.events_processed, r2.events_processed);
  EXPECT_EQ(r1.log, r2.log);
  EXPECT_EQ(r1.durable_lsn, r2.durable_lsn);
  EXPECT_EQ(r1.commits, r2.commits);
  EXPECT_EQ(r1.aborts, r2.aborts);
  EXPECT_EQ(r1.faults_injected, r2.faults_injected);
  EXPECT_EQ(r1.log_stats.flush_retries, r2.log_stats.flush_retries);
  EXPECT_EQ(r1.log_stats.flush_backoff_ns, r2.log_stats.flush_backoff_ns);

  // Recovery at the same crash point reports identical stats.
  const size_t cut = r1.log.size() / 2;
  wal::RecoveryStats s1;
  wal::RecoveryStats s2;
  EXPECT_EQ(h1.CheckCrashPoint(cut, TailFault::kCleanCut, 1, &s1), "");
  EXPECT_EQ(h2.CheckCrashPoint(cut, TailFault::kCleanCut, 1, &s2), "");
  EXPECT_EQ(s1.records_scanned, s2.records_scanned);
  EXPECT_EQ(s1.committed_txns, s2.committed_txns);
  EXPECT_EQ(s1.loser_txns, s2.loser_txns);
  EXPECT_EQ(s1.redo_applied, s2.redo_applied);
  EXPECT_EQ(s1.torn_tail.kind, s2.torn_tail.kind);
}

TEST(FaultInjectionTest, OneShotFlushFaultIsRetriedWithBackoff) {
  CrashHarnessConfig cfg = BaseConfig(EngineMode::kDora, 6);
  // The third transfer on the log SSD fails once; the bounded-retry flush
  // must absorb it with one backoff and lose nothing.
  cfg.fault_plan.WithFailOnce("ssd", 2);

  CrashHarness h(cfg);
  const CrashRunResult& r = h.Run();
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.log_stats.flush_errors, 1u);
  EXPECT_GE(r.log_stats.flush_retries, 1u);
  EXPECT_GT(r.log_stats.flush_backoff_ns, 0u);
  EXPECT_EQ(r.log_stats.flush_failures, 0u);
  EXPECT_EQ(r.durability_failures, 0u);
  EXPECT_GT(r.commits, 0u);
  // Everything still recovers exactly.
  EXPECT_EQ(h.CheckCrashPoint(r.log.size(), TailFault::kCleanCut, 1), "");
}

TEST(FaultInjectionTest, DeadLogDeviceDegradesWithoutCrashing) {
  CrashHarnessConfig cfg = BaseConfig(EngineMode::kDora, 7);
  cfg.fault_plan.WithErrorRate("ssd", 1.0);

  CrashHarness h(cfg);
  const CrashRunResult& r = h.Run();
  // The first flush exhausts its retry budget, the error sticks, and every
  // write transaction fails durability — but the run completes.
  EXPECT_EQ(r.durable_lsn, 0u);
  EXPECT_GE(r.log_stats.flush_failures, 1u);
  EXPECT_GE(r.log_stats.flush_retries,
            static_cast<uint64_t>(wal::RetryPolicy{}.max_attempts - 1));
  EXPECT_GT(r.durability_failures, 0u);
  EXPECT_GT(r.end_time_ns, 0u);
  // Nothing durable means recovery reproduces the loaded state.
  EXPECT_EQ(h.CheckCrashPoint(0, TailFault::kCleanCut, 1), "");
}

TEST(FaultInjectionTest, CrashAtLsnFreezesDurabilityAtConsistentPrefix) {
  CrashHarnessConfig cfg = BaseConfig(EngineMode::kDora, 8);
  cfg.fault_plan.crash_at_lsn = 6000;

  CrashHarness h(cfg);
  const CrashRunResult& r = h.Run();
  EXPECT_LE(r.durable_lsn, 6000u);
  EXPECT_GT(r.durable_lsn, 0u);
  EXPECT_LT(r.durable_lsn, r.log.size());  // Writes continued past the crash.
  EXPECT_GT(r.durability_failures, 0u);
  // The frozen durable prefix recovers to exactly its oracle state.
  EXPECT_EQ(h.CheckCrashPoint(static_cast<size_t>(r.durable_lsn),
                              TailFault::kCleanCut, 1),
            "");
}

TEST(FaultInjectionTest, HardwareProbeFaultsFallBackToSoftware) {
  CrashHarnessConfig cfg = BaseConfig(EngineMode::kBionic, 9);
  cfg.fault_plan.WithErrorRate("sg_dram", 0.05);

  CrashHarness h(cfg);
  const CrashRunResult& r = h.Run();
  EXPECT_GT(r.hw_fallbacks, 0u);
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.commits, 0u);  // Degraded, still serving.
  EXPECT_EQ(h.CheckCrashPoint(r.log.size(), TailFault::kCleanCut, 1), "");
}

TEST(FaultInjectionTest, TpccRunsUnderFaultsAndRecovers) {
  CrashHarnessConfig cfg;
  cfg.mode = EngineMode::kConventional;
  cfg.seed = 10;
  cfg.use_tpcc = true;
  cfg.clients = 2;
  cfg.txns = 60;
  cfg.scale = 20;
  cfg.fault_plan.WithFailOnce("ssd", 1);

  CrashHarness h(cfg);
  const CrashRunResult& r = h.Run();
  EXPECT_GT(r.commits, 0u);
  EXPECT_EQ(r.log_stats.flush_failures, 0u);
  EXPECT_EQ(h.CheckCrashPoint(r.log.size(), TailFault::kCleanCut, 1), "");
  EXPECT_EQ(h.CheckCrashPoint(r.log.size() / 3, TailFault::kZeroFill, 2), "");
}

}  // namespace
}  // namespace bionicdb
