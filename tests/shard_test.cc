// Shard subsystem tests: routing, the 1-shard passivity contract (a
// 1-shard cluster run is bit-identical to the unsharded engine, WAL
// bytes included), sharded loading as an exact partition of the
// unsharded database, 2PC commit/abort atomicity with prepare/decision
// records in the WAL, and distributed recovery from the decision set.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "index/codec.h"
#include "shard/cluster.h"
#include "shard/router.h"
#include "sim/simulator.h"
#include "wal/record.h"
#include "wal/recovery.h"
#include "workload/driver.h"
#include "workload/sharded_driver.h"
#include "workload/sharded_tatp.h"
#include "workload/tatp.h"

namespace bionicdb::shard {
namespace {

using engine::Engine;
using engine::EngineConfig;
using sim::Simulator;
using sim::Task;
using workload::DriverConfig;
using workload::RunClosedLoop;
using workload::RunShardedClosedLoop;
using workload::ShardedDriverReport;
using workload::ShardedTatp;
using workload::ShardedTatpConfig;
using workload::TatpConfig;
using workload::TatpWorkload;

EngineConfig SmallDora() {
  EngineConfig c = EngineConfig::Dora();
  c.num_partitions = 4;
  return c;
}

ClusterConfig SmallCluster(int shards) {
  ClusterConfig c;
  c.num_shards = shards;
  c.engine = SmallDora();
  return c;
}

std::map<std::string, std::string> StateOf(engine::Database& db) {
  std::map<std::string, std::string> state;
  for (uint32_t id = 0; id < db.num_tables(); ++id) {
    engine::Table* t = db.GetTable(id);
    for (auto& [k, v] : t->ScanAll()) state[t->name() + "/" + k] = v;
  }
  return state;
}

// ------------------------------------------------------------- router --

TEST(RouterTest, OwnerOfIsModulo) {
  Router r(4);
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(r.OwnerOf(id), static_cast<int>(id % 4));
  }
}

TEST(RouterTest, ShardOfIsStableAndSpreads) {
  Router r(4);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const int s = r.ShardOf(Slice(key));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, r.ShardOf(Slice(key)));  // deterministic
    ++hits[static_cast<size_t>(s)];
  }
  for (int s = 0; s < 4; ++s) EXPECT_GT(hits[static_cast<size_t>(s)], 100);
}

// ---------------------------------------------------------- passivity --

/// The acceptance criterion of the sharding PR, in miniature: the same
/// closed-loop TATP run through a 1-shard cluster and through the plain
/// engine must produce byte-identical WALs, the same commit counts, and
/// the same final virtual time.
TEST(ShardClusterTest, SingleShardPassivityBitIdentical) {
  DriverConfig dcfg;
  dcfg.clients = 8;
  dcfg.warmup_txns = 100;
  dcfg.measured_txns = 1000;

  // Unsharded reference run.
  Simulator ref_sim;
  Engine ref_engine(&ref_sim, SmallDora());
  TatpConfig ref_wcfg;
  ref_wcfg.subscribers = 500;
  TatpWorkload ref_tatp(&ref_engine, ref_wcfg);
  ASSERT_TRUE(ref_tatp.Load().ok());
  workload::DriverReport ref_report;
  ref_sim.Spawn(RunClosedLoop(
      &ref_engine, [&] { return ref_tatp.NextTransaction(); }, dcfg,
      &ref_report));
  ref_sim.Run();

  // Same run through a 1-shard cluster.
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(1));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 500;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  ShardedDriverReport report;
  sim.Spawn(RunShardedClosedLoop(
      &cluster, [&] { return tatp.NextTransaction(); }, dcfg, &report));
  sim.Run();

  EXPECT_EQ(sim.Now(), ref_sim.Now());
  EXPECT_EQ(cluster.TotalCommits(), ref_engine.metrics().commits);
  EXPECT_EQ(cluster.TotalAborts(), ref_engine.metrics().aborts);
  EXPECT_EQ(report.submitted(), ref_report.submitted);
  EXPECT_EQ(report.retries(), ref_report.retries);
  // The strongest form: every logged byte identical.
  EXPECT_EQ(cluster.shard(0)->log()->buffer(), ref_engine.log()->buffer());
  // And no distributed machinery fired.
  EXPECT_EQ(cluster.tpc_stats().started, 0u);
  EXPECT_EQ(report.cross_shard_submitted, 0u);
}

/// The bench pin, as a unit test: the shard_closed_1 row's exact
/// configuration must still print 2192905.5 sim txn/s after the fan-out
/// rework — the cluster path through a 1-shard run adds no events, no
/// RNG draws, and no timeline charges.
TEST(ShardClusterTest, SingleShardThroughputPinExact) {
  Simulator sim;
  ClusterConfig cc;
  cc.num_shards = 1;
  cc.engine = EngineConfig();  // default DORA commodity server
  cc.engine.flight.enabled = true;
  Cluster cluster(&sim, cc);
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 5000;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 32;
  dcfg.warmup_txns = 2000;
  dcfg.measured_txns = 6000;
  ShardedDriverReport report;
  sim.Spawn(RunShardedClosedLoop(
      &cluster, [&] { return tatp.NextTransaction(); }, dcfg, &report));
  sim.Run();

  const double elapsed_ns =
      static_cast<double>(cluster.shard(0)->metrics().elapsed_ns);
  ASSERT_GT(elapsed_ns, 0.0);
  const double tps =
      static_cast<double>(cluster.TotalCommits()) * 1e9 / elapsed_ns;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", tps);
  EXPECT_STREQ(buf, "2192905.5");
}

// ------------------------------------------------------------ loading --

/// Sharded loading must partition the unsharded database exactly: the
/// union of all shards' tables equals the unsharded tables row-for-row,
/// and each row lives only on its owner.
TEST(ShardClusterTest, ShardedLoadPartitionsDatabase) {
  const uint64_t kSubs = 40;

  Simulator ref_sim;
  Engine ref_engine(&ref_sim, SmallDora());
  TatpConfig ref_wcfg;
  ref_wcfg.subscribers = kSubs;
  TatpWorkload ref_tatp(&ref_engine, ref_wcfg);
  ASSERT_TRUE(ref_tatp.Load().ok());
  const auto ref_state = StateOf(ref_engine.db());

  Simulator sim;
  Cluster cluster(&sim, SmallCluster(3));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = kSubs;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  std::map<std::string, std::string> merged;
  for (int i = 0; i < cluster.num_shards(); ++i) {
    for (const auto& [k, v] : StateOf(cluster.shard(i)->db())) {
      auto [it, inserted] = merged.emplace(k, v);
      EXPECT_TRUE(inserted) << "row " << k << " loaded on two shards";
    }
  }
  EXPECT_EQ(merged, ref_state);
}

// ---------------------------------------------------------------- 2PC --

struct TxnResult {
  Status status = Status::OK();
};

Task<void> DriveOne(Cluster* cluster, ShardedTxn txn, TxnResult* out) {
  out->status = co_await cluster->Execute(std::move(txn));
  co_await cluster->Shutdown();
}

/// Builds a two-shard UpdateLocation pair against owned s_ids
/// (UpdateLocation always succeeds when the subscriber exists, unlike
/// UpdateSubscriberData whose sf_type draw may legitimately miss).
ShardedTxn CrossShardUpdate(ShardedTatp* tatp, uint64_t s0, uint64_t s1,
                            int shard0, int shard1) {
  ShardedTxn txn;
  TatpWorkload* w0 = tatp->shard_workload(shard0);
  TatpWorkload* w1 = tatp->shard_workload(shard1);
  txn.fragments.push_back(
      {shard0, w0->MakeUpdateLocation(w0->SubNbr(s0), 12345)});
  txn.fragments.push_back(
      {shard1, w1->MakeUpdateLocation(w1->SubNbr(s1), 67890)});
  return txn;
}

TEST(TwoPhaseCommitTest, CrossShardCommitWritesPrepareAndDecision) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 40;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  // s_id 2 lives on shard 0, s_id 3 on shard 1 (modulo placement).
  TxnResult result;
  cluster.Start();
  sim.Spawn(DriveOne(&cluster, CrossShardUpdate(&tatp, 2, 3, 0, 1), &result));
  sim.Run();

  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(cluster.tpc_stats().started, 1u);
  EXPECT_EQ(cluster.tpc_stats().committed, 1u);
  EXPECT_EQ(cluster.tpc_stats().aborted, 0u);

  EXPECT_EQ(cluster.tpc_stats().decisions_retired, 1u);

  // Both shards hold a durable kPrepare for the same gtid; the
  // coordinator (lowest shard id = 0) additionally holds the decision —
  // and, because both branch commits became durable, the kCoordForget
  // marker that retires it.
  std::vector<uint64_t> gtids;
  for (int i = 0; i < 2; ++i) {
    auto recs = wal::ParseLogStream(Slice(cluster.shard(i)->log()->buffer()));
    ASSERT_TRUE(recs.ok());
    uint64_t gtid = 0;
    bool commit = false;
    int coord_commits = 0;
    int coord_forgets = 0;
    for (const wal::LogRecord& rec : *recs) {
      if (rec.type == wal::RecordType::kPrepare) gtid = wal::PrepareGtid(rec);
      if (rec.type == wal::RecordType::kCommit) commit = true;
      if (rec.type == wal::RecordType::kCoordCommit) ++coord_commits;
      if (rec.type == wal::RecordType::kCoordForget) ++coord_forgets;
    }
    EXPECT_NE(gtid, 0u) << "no prepare on shard " << i;
    EXPECT_TRUE(commit) << "no branch commit on shard " << i;
    gtids.push_back(gtid);

    wal::DistributedDecisions decisions;
    ASSERT_TRUE(wal::CollectDecisions(
                    Slice(cluster.shard(i)->log()->buffer()), &decisions)
                    .ok());
    if (i == 0) {
      EXPECT_EQ(coord_commits, 1) << "coordinator decision missing";
      EXPECT_EQ(coord_forgets, 1) << "decision never retired";
      EXPECT_EQ(decisions.collected, 1u);
      EXPECT_EQ(decisions.retired, 1u);
      // GC already retired the decision: every branch's commit is
      // durable, so the live decision set is empty again.
      EXPECT_TRUE(decisions.committed_gtids.empty());
    } else {
      EXPECT_EQ(coord_commits, 0) << "participant wrote a decision record";
      EXPECT_EQ(coord_forgets, 0) << "participant wrote a forget record";
      EXPECT_TRUE(decisions.committed_gtids.empty());
    }
  }
  EXPECT_EQ(gtids[0], gtids[1]);
}

TEST(TwoPhaseCommitTest, FailedBranchAbortsAtomicallyOnAllShards) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 40;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  std::vector<std::map<std::string, std::string>> before;
  for (int i = 0; i < 2; ++i) before.push_back(StateOf(cluster.shard(i)->db()));

  // Shard 0's valid branch executes (locks held, write applied), then
  // shard 1's fragment targets a subscriber that does not exist and
  // fails — shard 0's already-executed branch must roll back with it.
  TxnResult result;
  cluster.Start();
  sim.Spawn(
      DriveOne(&cluster, CrossShardUpdate(&tatp, 2, 9999, 0, 1), &result));
  sim.Run();

  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(cluster.tpc_stats().committed, 0u);
  EXPECT_EQ(cluster.tpc_stats().aborted, 1u);
  EXPECT_GT(cluster.tpc_stats().exec_aborts, 0u);
  // Atomicity: neither shard's state moved.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(StateOf(cluster.shard(i)->db()), before[static_cast<size_t>(i)])
        << "shard " << i << " mutated by an aborted distributed txn";
  }
  // Presumed abort: no decision record anywhere.
  for (int i = 0; i < 2; ++i) {
    wal::DistributedDecisions decisions;
    ASSERT_TRUE(wal::CollectDecisions(
                    Slice(cluster.shard(i)->log()->buffer()), &decisions)
                    .ok());
    EXPECT_TRUE(decisions.committed_gtids.empty());
  }
}

/// The decision-GC crash window: crash AFTER every branch commit is
/// durable but BEFORE the kCoordForget marker — the decision must still
/// be live in the surviving prefix, and recovery with it must commit the
/// prepared branches. (The window after the forget is covered by
/// CrossShardCommitWritesPrepareAndDecision: branches win via their own
/// local kCommit once the decision is retired.)
TEST(TwoPhaseCommitTest, DecisionLiveUntilForgetDurable) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 40;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  TxnResult result;
  cluster.Start();
  sim.Spawn(DriveOne(&cluster, CrossShardUpdate(&tatp, 2, 3, 0, 1), &result));
  sim.Run();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  ASSERT_EQ(cluster.tpc_stats().decisions_retired, 1u);

  // Truncate the coordinator's log at the forget record's byte offset:
  // the crash image holds both prepares, both branch commits, and the
  // decision — but not the GC marker.
  const std::string coord_log = cluster.shard(0)->log()->buffer();
  auto coord_recs = wal::ParseLogStream(Slice(coord_log));
  ASSERT_TRUE(coord_recs.ok());
  wal::Lsn forget_at = wal::kInvalidLsn;
  for (const wal::LogRecord& rec : *coord_recs) {
    if (rec.type == wal::RecordType::kCoordForget) forget_at = rec.lsn;
  }
  ASSERT_NE(forget_at, wal::kInvalidLsn);
  const std::string crash_image = coord_log.substr(0, static_cast<size_t>(forget_at));

  wal::DistributedDecisions decisions;
  ASSERT_TRUE(wal::CollectDecisions(Slice(crash_image), &decisions).ok());
  ASSERT_TRUE(wal::CollectDecisions(
                  Slice(cluster.shard(1)->log()->buffer()), &decisions)
                  .ok());
  EXPECT_EQ(decisions.collected, 1u);
  EXPECT_EQ(decisions.retired, 0u);
  EXPECT_EQ(decisions.committed_gtids.size(), 1u);

  // Recovery from the crash image commits the coordinator's prepared
  // branch off the still-live decision and reproduces the live state.
  Simulator fresh_sim;
  Cluster fresh(&fresh_sim, SmallCluster(2));
  ShardedTatp fresh_tatp(&fresh, wcfg);
  ASSERT_TRUE(fresh_tatp.Load().ok());
  class DbTarget : public wal::RecoveryTarget {
   public:
    explicit DbTarget(engine::Database* db) : db_(db) {}
    void RedoInsert(uint32_t t, Slice k, Slice v) override {
      ASSERT_TRUE(db_->GetTable(t)->BasePut(k, v).ok());
    }
    void RedoUpdate(uint32_t t, Slice k, Slice v) override {
      ASSERT_TRUE(db_->GetTable(t)->BasePut(k, v).ok());
    }
    void RedoDelete(uint32_t t, Slice k) override {
      (void)db_->GetTable(t)->BaseDelete(k);
    }

   private:
    engine::Database* db_;
  };
  DbTarget target(&fresh.shard(0)->db());
  wal::RecoveryStats stats;
  ASSERT_TRUE(
      wal::Recover(Slice(crash_image), &target, &stats, &decisions).ok());
  EXPECT_EQ(stats.prepared_committed, 1u);
  EXPECT_EQ(stats.prepared_aborted, 0u);
  EXPECT_EQ(stats.decision_records, 1u);
  EXPECT_EQ(stats.forget_records, 0u);
  EXPECT_EQ(StateOf(fresh.shard(0)->db()), StateOf(cluster.shard(0)->db()))
      << "coordinator crash image diverged from live state";
}

/// Fan-out deadlock freedom rests on wait-die over a TOTAL age order:
/// LockManager::ShouldDie breaks conflicts with a strict `<`, so two
/// distinct transactions holding EQUAL priorities would both wait — and
/// with per-shard XctManager counters all starting at 1, equal draws
/// across shards are exactly what would happen without the per-shard
/// priority domain the Cluster constructor installs. Pin that domain:
/// every priority in the cluster is globally unique (disjoint residue
/// classes mod num_shards), and a 1-shard cluster keeps priority == id
/// bit-for-bit (the passivity pin).
TEST(TwoPhaseCommitTest, WaitDiePrioritiesGloballyUnique) {
  Simulator sim;
  const int kShards = 4;
  Cluster cluster(&sim, SmallCluster(kShards));

  std::set<uint64_t> seen;
  for (int round = 0; round < 16; ++round) {
    for (int s = 0; s < kShards; ++s) {
      txn::XctManager& xm = cluster.shard(s)->xct_manager();
      // Both draw paths: a local transaction's Begin() and the pinned
      // distributed draw TwoPhaseCommit::PinPriority uses.
      const uint64_t begun = xm.Begin()->priority;
      const uint64_t drawn = xm.DrawPriority();
      for (uint64_t p : {begun, drawn}) {
        EXPECT_EQ(p % static_cast<uint64_t>(kShards),
                  static_cast<uint64_t>(s))
            << "shard " << s << " left its residue class";
        EXPECT_TRUE(seen.insert(p).second)
            << "duplicate wait-die priority " << p
            << " — ties stall both sides of a conflict";
      }
    }
  }

  Simulator one_sim;
  Cluster one(&one_sim, SmallCluster(1));
  for (uint64_t i = 1; i <= 8; ++i) {
    auto xct = one.shard(0)->xct_manager().Begin();
    EXPECT_EQ(xct->id, i);
    EXPECT_EQ(xct->priority, i);  // stride 1 / offset 0: unchanged
  }
  EXPECT_EQ(one.shard(0)->xct_manager().DrawPriority(), 9u);
}

// ----------------------------------------------------- snapshot reads --

/// Two-fragment read-only pair — routed through the prepare-free
/// snapshot path by Cluster::Execute.
ShardedTxn CrossShardRead(ShardedTatp* tatp, uint64_t s0, uint64_t s1,
                          int shard0, int shard1) {
  ShardedTxn txn;
  txn.fragments.push_back(
      {shard0, tatp->shard_workload(shard0)->MakeGetSubscriberData(s0)});
  txn.fragments.push_back(
      {shard1, tatp->shard_workload(shard1)->MakeGetSubscriberData(s1)});
  return txn;
}

TEST(SnapshotReadTest, SkipsTwoPCAndWritesNothing) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 40;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  std::vector<std::string> before;
  for (int i = 0; i < 2; ++i) before.push_back(cluster.shard(i)->log()->buffer());

  TxnResult result;
  cluster.Start();
  sim.Spawn(DriveOne(&cluster, CrossShardRead(&tatp, 2, 3, 0, 1), &result));
  sim.Run();

  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(cluster.snap_stats().started, 1u);
  EXPECT_EQ(cluster.snap_stats().committed, 1u);
  EXPECT_EQ(cluster.snap_stats().aborted, 0u);
  // No 2PC machinery fired — and nothing hit either WAL: no kPrepare, no
  // decision, no branch commit record (read-only commits are log-free).
  EXPECT_EQ(cluster.tpc_stats().started, 0u);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(cluster.shard(i)->log()->buffer(),
              before[static_cast<size_t>(i)])
        << "snapshot read appended to shard " << i << "'s WAL";
  }
}

/// Custom read step capturing one subscriber's vlr_location.
Engine::TxnSpec ReadLocation(Engine* eng, engine::Table* table, uint64_t s_id,
                             uint32_t* out) {
  Engine::TxnSpec spec;
  const std::string key = index::EncodeKeyU64(s_id);
  Engine::TxnStep step;
  step.table = table;
  step.keys = {key};
  step.read_only = true;
  step.fn = [eng, table, key, out](Engine::ExecContext& ctx) -> Task<Status> {
    auto r = co_await eng->ReadView(ctx, table, key);
    if (!r.ok()) co_return r.status();
    *out = workload::DecodeRow<workload::SubscriberRow>(*r).vlr_location;
    co_return Status::OK();
  };
  spec.phases.push_back({std::move(step)});
  return spec;
}

/// 2PC write pair setting BOTH subscribers' vlr_location to the same
/// value — the invariant the snapshot reader checks.
ShardedTxn SameValueUpdate(ShardedTatp* tatp, uint64_t s0, uint64_t s1,
                           uint32_t value) {
  ShardedTxn txn;
  TatpWorkload* w0 = tatp->shard_workload(0);
  TatpWorkload* w1 = tatp->shard_workload(1);
  txn.fragments.push_back({0, w0->MakeUpdateLocation(w0->SubNbr(s0), value)});
  txn.fragments.push_back({1, w1->MakeUpdateLocation(w1->SubNbr(s1), value)});
  return txn;
}

struct CutProbe {
  std::vector<std::pair<uint32_t, uint32_t>> observed;
  bool seeded = false;
  bool writer_done = false;
  bool reader_done = false;
};

Task<void> SameValueWriterLoop(Cluster* cluster, ShardedTatp* tatp, int n,
                               CutProbe* probe) {
  // i == 0 seeds the invariant; wait-die may abort a writer that loses to
  // an older snapshot reader, so every write retries until it commits.
  for (int i = 0; i <= n; ++i) {
    for (;;) {
      Status st = co_await cluster->Execute(
          SameValueUpdate(tatp, 2, 3, 0xBEE00000u + static_cast<uint32_t>(i)));
      if (st.ok()) break;
    }
    probe->seeded = true;
  }
  probe->writer_done = true;
  if (probe->reader_done) co_await cluster->Shutdown();
}

Task<void> SnapshotReaderLoop(Cluster* cluster, ShardedTatp* tatp, int n,
                              CutProbe* probe) {
  sim::Simulator* sim = cluster->simulator();
  while (!probe->seeded) co_await sim::Delay{sim, 1000};
  for (int i = 0; i < n; ++i) {
    uint32_t v0 = 0;
    uint32_t v1 = 0;
    for (;;) {
      ShardedTxn txn;
      txn.fragments.push_back(
          {0, ReadLocation(cluster->shard(0),
                           tatp->shard_workload(0)->subscriber(), 2, &v0)});
      txn.fragments.push_back(
          {1, ReadLocation(cluster->shard(1),
                           tatp->shard_workload(1)->subscriber(), 3, &v1)});
      Status st = co_await cluster->Execute(std::move(txn));
      if (st.ok()) break;
    }
    probe->observed.emplace_back(v0, v1);
  }
  probe->reader_done = true;
  if (probe->writer_done) co_await cluster->Shutdown();
}

/// Consistency: a snapshot read's join point is one virtual instant with
/// every branch's shared locks held, so no committed 2PC write can be
/// half-visible. The writer keeps both subscribers' vlr_location equal;
/// every snapshot read must observe them equal.
TEST(SnapshotReadTest, ObservesConsistentCutUnderConcurrentWriters) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 40;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  CutProbe probe;
  cluster.Start();
  sim.Spawn(SameValueWriterLoop(&cluster, &tatp, 40, &probe));
  sim.Spawn(SnapshotReaderLoop(&cluster, &tatp, 40, &probe));
  sim.Run();

  ASSERT_EQ(probe.observed.size(), 40u);
  EXPECT_GE(cluster.snap_stats().committed, 40u);
  EXPECT_GE(cluster.tpc_stats().committed, 41u);
  for (size_t i = 0; i < probe.observed.size(); ++i) {
    const auto& [v0, v1] = probe.observed[i];
    EXPECT_EQ(v0, v1) << "read " << i << " split a 2PC write: shard0 saw "
                      << v0 << ", shard1 saw " << v1;
    EXPECT_GE(v0, 0xBEE00000u) << "read " << i << " preceded the seed";
  }
}

// ------------------------------------------------- sharded closed loop --

TEST(ShardClusterTest, CrossShardTrafficCommitsAndIsAttributed) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(4));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 2000;
  wcfg.cross_shard_ratio = 0.2;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 8;
  dcfg.warmup_txns = 100;
  dcfg.measured_txns = 1000;
  ShardedDriverReport report;
  sim.Spawn(RunShardedClosedLoop(
      &cluster, [&] { return tatp.NextTransaction(); }, dcfg, &report));
  sim.Run();

  EXPECT_EQ(report.submitted(), 1000u);
  EXPECT_GT(report.cross_shard_submitted, 100u);  // ~20% of 1000
  EXPECT_GT(cluster.tpc_stats().committed, 0u);
  // Per-shard attribution: every home shard saw traffic, and the totals
  // reconcile with the aggregate.
  ASSERT_EQ(report.per_shard.size(), 4u);
  for (const auto& s : report.per_shard) EXPECT_GT(s.submitted, 0u);
  EXPECT_GT(cluster.TotalCommits(), 0u);
}

/// Distributed recovery end to end: run cross-shard traffic, then replay
/// every shard's full log into a fresh cluster with the cluster-wide
/// decision set; prepared branches with a surviving decision commit.
TEST(ShardClusterTest, DistributedRecoveryReplaysFullLog) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 200;
  wcfg.cross_shard_ratio = 0.3;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 4;
  dcfg.warmup_txns = 0;
  dcfg.measured_txns = 300;
  sim.Spawn(RunShardedClosedLoop(
      &cluster, [&] { return tatp.NextTransaction(); }, dcfg, nullptr));
  sim.Run();
  ASSERT_GT(cluster.tpc_stats().committed, 0u);

  wal::DistributedDecisions decisions;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(wal::CollectDecisions(
                    Slice(cluster.shard(i)->log()->buffer()), &decisions)
                    .ok());
  }
  // Decision GC retires a decision once every branch commit is durable,
  // so the LIVE set can be (much) smaller than the commit count — but a
  // kCoordCommit was collected for every 2PC commit before retirement.
  EXPECT_GE(decisions.collected, cluster.tpc_stats().committed);
  EXPECT_EQ(decisions.retired, cluster.tpc_stats().decisions_retired);

  uint64_t prepared_committed = 0;
  for (int i = 0; i < 2; ++i) {
    Simulator fresh_sim;
    Cluster fresh(&fresh_sim, SmallCluster(2));
    ShardedTatp fresh_tatp(&fresh, wcfg);
    ASSERT_TRUE(fresh_tatp.Load().ok());

    class DbTarget : public wal::RecoveryTarget {
     public:
      explicit DbTarget(engine::Database* db) : db_(db) {}
      void RedoInsert(uint32_t t, Slice k, Slice v) override {
        ASSERT_TRUE(db_->GetTable(t)->BasePut(k, v).ok());
      }
      void RedoUpdate(uint32_t t, Slice k, Slice v) override {
        ASSERT_TRUE(db_->GetTable(t)->BasePut(k, v).ok());
      }
      void RedoDelete(uint32_t t, Slice k) override {
        (void)db_->GetTable(t)->BaseDelete(k);
      }

     private:
      engine::Database* db_;
    };
    DbTarget target(&fresh.shard(i)->db());
    wal::RecoveryStats stats;
    ASSERT_TRUE(wal::Recover(Slice(cluster.shard(i)->log()->buffer()),
                             &target, &stats, &decisions)
                    .ok());
    prepared_committed += stats.prepared_committed;
    EXPECT_EQ(StateOf(fresh.shard(i)->db()),
              StateOf(cluster.shard(i)->db()))
        << "shard " << i << " recovery diverged from live state";
  }
  // The full log holds every prepared branch; with the complete decision
  // set they all commit (2 branches per distributed txn).
  EXPECT_EQ(prepared_committed, 2 * cluster.tpc_stats().committed);
}

}  // namespace
}  // namespace bionicdb::shard
