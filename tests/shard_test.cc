// Shard subsystem tests: routing, the 1-shard passivity contract (a
// 1-shard cluster run is bit-identical to the unsharded engine, WAL
// bytes included), sharded loading as an exact partition of the
// unsharded database, 2PC commit/abort atomicity with prepare/decision
// records in the WAL, and distributed recovery from the decision set.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "shard/cluster.h"
#include "shard/router.h"
#include "sim/simulator.h"
#include "wal/record.h"
#include "wal/recovery.h"
#include "workload/driver.h"
#include "workload/sharded_driver.h"
#include "workload/sharded_tatp.h"
#include "workload/tatp.h"

namespace bionicdb::shard {
namespace {

using engine::Engine;
using engine::EngineConfig;
using sim::Simulator;
using sim::Task;
using workload::DriverConfig;
using workload::RunClosedLoop;
using workload::RunShardedClosedLoop;
using workload::ShardedDriverReport;
using workload::ShardedTatp;
using workload::ShardedTatpConfig;
using workload::TatpConfig;
using workload::TatpWorkload;

EngineConfig SmallDora() {
  EngineConfig c = EngineConfig::Dora();
  c.num_partitions = 4;
  return c;
}

ClusterConfig SmallCluster(int shards) {
  ClusterConfig c;
  c.num_shards = shards;
  c.engine = SmallDora();
  return c;
}

std::map<std::string, std::string> StateOf(engine::Database& db) {
  std::map<std::string, std::string> state;
  for (uint32_t id = 0; id < db.num_tables(); ++id) {
    engine::Table* t = db.GetTable(id);
    for (auto& [k, v] : t->ScanAll()) state[t->name() + "/" + k] = v;
  }
  return state;
}

// ------------------------------------------------------------- router --

TEST(RouterTest, OwnerOfIsModulo) {
  Router r(4);
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(r.OwnerOf(id), static_cast<int>(id % 4));
  }
}

TEST(RouterTest, ShardOfIsStableAndSpreads) {
  Router r(4);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const int s = r.ShardOf(Slice(key));
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, r.ShardOf(Slice(key)));  // deterministic
    ++hits[static_cast<size_t>(s)];
  }
  for (int s = 0; s < 4; ++s) EXPECT_GT(hits[static_cast<size_t>(s)], 100);
}

// ---------------------------------------------------------- passivity --

/// The acceptance criterion of the sharding PR, in miniature: the same
/// closed-loop TATP run through a 1-shard cluster and through the plain
/// engine must produce byte-identical WALs, the same commit counts, and
/// the same final virtual time.
TEST(ShardClusterTest, SingleShardPassivityBitIdentical) {
  DriverConfig dcfg;
  dcfg.clients = 8;
  dcfg.warmup_txns = 100;
  dcfg.measured_txns = 1000;

  // Unsharded reference run.
  Simulator ref_sim;
  Engine ref_engine(&ref_sim, SmallDora());
  TatpConfig ref_wcfg;
  ref_wcfg.subscribers = 500;
  TatpWorkload ref_tatp(&ref_engine, ref_wcfg);
  ASSERT_TRUE(ref_tatp.Load().ok());
  workload::DriverReport ref_report;
  ref_sim.Spawn(RunClosedLoop(
      &ref_engine, [&] { return ref_tatp.NextTransaction(); }, dcfg,
      &ref_report));
  ref_sim.Run();

  // Same run through a 1-shard cluster.
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(1));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 500;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  ShardedDriverReport report;
  sim.Spawn(RunShardedClosedLoop(
      &cluster, [&] { return tatp.NextTransaction(); }, dcfg, &report));
  sim.Run();

  EXPECT_EQ(sim.Now(), ref_sim.Now());
  EXPECT_EQ(cluster.TotalCommits(), ref_engine.metrics().commits);
  EXPECT_EQ(cluster.TotalAborts(), ref_engine.metrics().aborts);
  EXPECT_EQ(report.submitted(), ref_report.submitted);
  EXPECT_EQ(report.retries(), ref_report.retries);
  // The strongest form: every logged byte identical.
  EXPECT_EQ(cluster.shard(0)->log()->buffer(), ref_engine.log()->buffer());
  // And no distributed machinery fired.
  EXPECT_EQ(cluster.tpc_stats().started, 0u);
  EXPECT_EQ(report.cross_shard_submitted, 0u);
}

// ------------------------------------------------------------ loading --

/// Sharded loading must partition the unsharded database exactly: the
/// union of all shards' tables equals the unsharded tables row-for-row,
/// and each row lives only on its owner.
TEST(ShardClusterTest, ShardedLoadPartitionsDatabase) {
  const uint64_t kSubs = 40;

  Simulator ref_sim;
  Engine ref_engine(&ref_sim, SmallDora());
  TatpConfig ref_wcfg;
  ref_wcfg.subscribers = kSubs;
  TatpWorkload ref_tatp(&ref_engine, ref_wcfg);
  ASSERT_TRUE(ref_tatp.Load().ok());
  const auto ref_state = StateOf(ref_engine.db());

  Simulator sim;
  Cluster cluster(&sim, SmallCluster(3));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = kSubs;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  std::map<std::string, std::string> merged;
  for (int i = 0; i < cluster.num_shards(); ++i) {
    for (const auto& [k, v] : StateOf(cluster.shard(i)->db())) {
      auto [it, inserted] = merged.emplace(k, v);
      EXPECT_TRUE(inserted) << "row " << k << " loaded on two shards";
    }
  }
  EXPECT_EQ(merged, ref_state);
}

// ---------------------------------------------------------------- 2PC --

struct TxnResult {
  Status status = Status::OK();
};

Task<void> DriveOne(Cluster* cluster, ShardedTxn txn, TxnResult* out) {
  out->status = co_await cluster->Execute(std::move(txn));
  co_await cluster->Shutdown();
}

/// Builds a two-shard UpdateLocation pair against owned s_ids
/// (UpdateLocation always succeeds when the subscriber exists, unlike
/// UpdateSubscriberData whose sf_type draw may legitimately miss).
ShardedTxn CrossShardUpdate(ShardedTatp* tatp, uint64_t s0, uint64_t s1,
                            int shard0, int shard1) {
  ShardedTxn txn;
  TatpWorkload* w0 = tatp->shard_workload(shard0);
  TatpWorkload* w1 = tatp->shard_workload(shard1);
  txn.fragments.push_back(
      {shard0, w0->MakeUpdateLocation(w0->SubNbr(s0), 12345)});
  txn.fragments.push_back(
      {shard1, w1->MakeUpdateLocation(w1->SubNbr(s1), 67890)});
  return txn;
}

TEST(TwoPhaseCommitTest, CrossShardCommitWritesPrepareAndDecision) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 40;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  // s_id 2 lives on shard 0, s_id 3 on shard 1 (modulo placement).
  TxnResult result;
  cluster.Start();
  sim.Spawn(DriveOne(&cluster, CrossShardUpdate(&tatp, 2, 3, 0, 1), &result));
  sim.Run();

  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(cluster.tpc_stats().started, 1u);
  EXPECT_EQ(cluster.tpc_stats().committed, 1u);
  EXPECT_EQ(cluster.tpc_stats().aborted, 0u);

  // Both shards hold a durable kPrepare for the same gtid; the
  // coordinator (lowest shard id = 0) additionally holds the decision.
  std::vector<uint64_t> gtids;
  for (int i = 0; i < 2; ++i) {
    auto recs = wal::ParseLogStream(Slice(cluster.shard(i)->log()->buffer()));
    ASSERT_TRUE(recs.ok());
    uint64_t gtid = 0;
    bool commit = false;
    for (const wal::LogRecord& rec : *recs) {
      if (rec.type == wal::RecordType::kPrepare) gtid = wal::PrepareGtid(rec);
      if (rec.type == wal::RecordType::kCommit) commit = true;
    }
    EXPECT_NE(gtid, 0u) << "no prepare on shard " << i;
    EXPECT_TRUE(commit) << "no branch commit on shard " << i;
    gtids.push_back(gtid);

    wal::DistributedDecisions decisions;
    ASSERT_TRUE(wal::CollectDecisions(
                    Slice(cluster.shard(i)->log()->buffer()), &decisions)
                    .ok());
    if (i == 0) {
      EXPECT_EQ(decisions.committed_gtids.count(gtid), 1u)
          << "coordinator decision missing";
    } else {
      EXPECT_TRUE(decisions.committed_gtids.empty())
          << "participant wrote a decision record";
    }
  }
  EXPECT_EQ(gtids[0], gtids[1]);
}

TEST(TwoPhaseCommitTest, FailedBranchAbortsAtomicallyOnAllShards) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 40;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  std::vector<std::map<std::string, std::string>> before;
  for (int i = 0; i < 2; ++i) before.push_back(StateOf(cluster.shard(i)->db()));

  // Shard 0's valid branch executes (locks held, write applied), then
  // shard 1's fragment targets a subscriber that does not exist and
  // fails — shard 0's already-executed branch must roll back with it.
  TxnResult result;
  cluster.Start();
  sim.Spawn(
      DriveOne(&cluster, CrossShardUpdate(&tatp, 2, 9999, 0, 1), &result));
  sim.Run();

  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(cluster.tpc_stats().committed, 0u);
  EXPECT_EQ(cluster.tpc_stats().aborted, 1u);
  EXPECT_GT(cluster.tpc_stats().exec_aborts, 0u);
  // Atomicity: neither shard's state moved.
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(StateOf(cluster.shard(i)->db()), before[static_cast<size_t>(i)])
        << "shard " << i << " mutated by an aborted distributed txn";
  }
  // Presumed abort: no decision record anywhere.
  for (int i = 0; i < 2; ++i) {
    wal::DistributedDecisions decisions;
    ASSERT_TRUE(wal::CollectDecisions(
                    Slice(cluster.shard(i)->log()->buffer()), &decisions)
                    .ok());
    EXPECT_TRUE(decisions.committed_gtids.empty());
  }
}

// ------------------------------------------------- sharded closed loop --

TEST(ShardClusterTest, CrossShardTrafficCommitsAndIsAttributed) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(4));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 2000;
  wcfg.cross_shard_ratio = 0.2;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 8;
  dcfg.warmup_txns = 100;
  dcfg.measured_txns = 1000;
  ShardedDriverReport report;
  sim.Spawn(RunShardedClosedLoop(
      &cluster, [&] { return tatp.NextTransaction(); }, dcfg, &report));
  sim.Run();

  EXPECT_EQ(report.submitted(), 1000u);
  EXPECT_GT(report.cross_shard_submitted, 100u);  // ~20% of 1000
  EXPECT_GT(cluster.tpc_stats().committed, 0u);
  // Per-shard attribution: every home shard saw traffic, and the totals
  // reconcile with the aggregate.
  ASSERT_EQ(report.per_shard.size(), 4u);
  for (const auto& s : report.per_shard) EXPECT_GT(s.submitted, 0u);
  EXPECT_GT(cluster.TotalCommits(), 0u);
}

/// Distributed recovery end to end: run cross-shard traffic, then replay
/// every shard's full log into a fresh cluster with the cluster-wide
/// decision set; prepared branches with a surviving decision commit.
TEST(ShardClusterTest, DistributedRecoveryReplaysFullLog) {
  Simulator sim;
  Cluster cluster(&sim, SmallCluster(2));
  ShardedTatpConfig wcfg;
  wcfg.subscribers = 200;
  wcfg.cross_shard_ratio = 0.3;
  ShardedTatp tatp(&cluster, wcfg);
  ASSERT_TRUE(tatp.Load().ok());

  DriverConfig dcfg;
  dcfg.clients = 4;
  dcfg.warmup_txns = 0;
  dcfg.measured_txns = 300;
  sim.Spawn(RunShardedClosedLoop(
      &cluster, [&] { return tatp.NextTransaction(); }, dcfg, nullptr));
  sim.Run();
  ASSERT_GT(cluster.tpc_stats().committed, 0u);

  wal::DistributedDecisions decisions;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(wal::CollectDecisions(
                    Slice(cluster.shard(i)->log()->buffer()), &decisions)
                    .ok());
  }
  EXPECT_GE(decisions.committed_gtids.size(), cluster.tpc_stats().committed);

  uint64_t prepared_committed = 0;
  for (int i = 0; i < 2; ++i) {
    Simulator fresh_sim;
    Cluster fresh(&fresh_sim, SmallCluster(2));
    ShardedTatp fresh_tatp(&fresh, wcfg);
    ASSERT_TRUE(fresh_tatp.Load().ok());

    class DbTarget : public wal::RecoveryTarget {
     public:
      explicit DbTarget(engine::Database* db) : db_(db) {}
      void RedoInsert(uint32_t t, Slice k, Slice v) override {
        ASSERT_TRUE(db_->GetTable(t)->BasePut(k, v).ok());
      }
      void RedoUpdate(uint32_t t, Slice k, Slice v) override {
        ASSERT_TRUE(db_->GetTable(t)->BasePut(k, v).ok());
      }
      void RedoDelete(uint32_t t, Slice k) override {
        (void)db_->GetTable(t)->BaseDelete(k);
      }

     private:
      engine::Database* db_;
    };
    DbTarget target(&fresh.shard(i)->db());
    wal::RecoveryStats stats;
    ASSERT_TRUE(wal::Recover(Slice(cluster.shard(i)->log()->buffer()),
                             &target, &stats, &decisions)
                    .ok());
    prepared_committed += stats.prepared_committed;
    EXPECT_EQ(StateOf(fresh.shard(i)->db()),
              StateOf(cluster.shard(i)->db()))
        << "shard " << i << " recovery diverged from live state";
  }
  // The full log holds every prepared branch; with the complete decision
  // set they all commit (2 branches per distributed txn).
  EXPECT_EQ(prepared_committed, 2 * cluster.tpc_stats().committed);
}

}  // namespace
}  // namespace bionicdb::shard
