// Tests for WAL records, the software/hardware log managers, group commit,
// and redo-winners recovery.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "hw/log_unit.h"
#include "hw/platform.h"
#include "sim/simulator.h"
#include "wal/log_manager.h"
#include "wal/record.h"
#include "wal/recovery.h"

namespace bionicdb::wal {
namespace {

using hw::Platform;
using hw::PlatformSpec;
using sim::Delay;
using sim::Simulator;
using sim::Task;

LogRecord MakeUpdate(uint64_t txn, const std::string& key,
                     const std::string& redo, const std::string& undo) {
  LogRecord rec;
  rec.type = RecordType::kUpdate;
  rec.txn_id = txn;
  rec.table_id = 1;
  rec.key = key;
  rec.redo = redo;
  rec.undo = undo;
  return rec;
}

// ---------------------------------------------------------------- Records --

TEST(LogRecordTest, SerializeParseRoundTrip) {
  LogRecord rec = MakeUpdate(42, "key1", "after", "before");
  rec.prev_lsn = 1234;
  std::string buf;
  rec.AppendTo(&buf);
  EXPECT_EQ(buf.size(), rec.SerializedSize());

  Slice in(buf);
  auto parsed = LogRecord::Parse(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(parsed->type, RecordType::kUpdate);
  EXPECT_EQ(parsed->txn_id, 42u);
  EXPECT_EQ(parsed->table_id, 1u);
  EXPECT_EQ(parsed->prev_lsn, 1234u);
  EXPECT_EQ(parsed->key, "key1");
  EXPECT_EQ(parsed->redo, "after");
  EXPECT_EQ(parsed->undo, "before");
}

TEST(LogRecordTest, EmptyPayloadsRoundTrip) {
  LogRecord rec;
  rec.type = RecordType::kCommit;
  rec.txn_id = 7;
  std::string buf;
  rec.AppendTo(&buf);
  Slice in(buf);
  auto parsed = LogRecord::Parse(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, RecordType::kCommit);
  EXPECT_TRUE(parsed->key.empty());
}

TEST(LogRecordTest, CrcCatchesCorruption) {
  LogRecord rec = MakeUpdate(1, "k", "r", "u");
  std::string buf;
  rec.AppendTo(&buf);
  buf[buf.size() / 2] ^= 0x40;
  Slice in(buf);
  EXPECT_TRUE(LogRecord::Parse(&in).status().IsCorruption());
}

TEST(LogRecordTest, TruncationDetected) {
  LogRecord rec = MakeUpdate(1, "k", "r", "u");
  std::string buf;
  rec.AppendTo(&buf);
  Slice in(buf.data(), buf.size() - 3);
  EXPECT_TRUE(LogRecord::Parse(&in).status().IsCorruption());
}

TEST(ParseLogStreamTest, MultipleRecordsAndTornTail) {
  std::string buf;
  for (int i = 0; i < 5; ++i) {
    MakeUpdate(static_cast<uint64_t>(i), "k" + std::to_string(i), "r", "u")
        .AppendTo(&buf);
  }
  const size_t full = buf.size();
  MakeUpdate(99, "torn", "r", "u").AppendTo(&buf);
  // Chop the last record in half: recovery must stop cleanly at the tear.
  Slice torn(buf.data(), full + 10);
  auto recs = ParseLogStream(torn);
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs->size(), 5u);
  EXPECT_EQ((*recs)[4].key, "k4");
}

TEST(ParseLogStreamTest, MidStreamCorruptionFails) {
  std::string buf;
  MakeUpdate(1, "a", "r", "u").AppendTo(&buf);
  const size_t first_end = buf.size();
  MakeUpdate(2, "b", "r", "u").AppendTo(&buf);
  buf[first_end / 2] ^= 1;
  EXPECT_TRUE(ParseLogStream(Slice(buf)).status().IsCorruption());
}

void OverwriteU32(std::string* buf, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[at + i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
}

TEST(LogRecordTest, WrappingLengthFieldsAreCorruption) {
  // klen/rlen crafted so a 32-bit sum of header + payload lengths + trailer
  // wraps back to the record's length field: a 32-bit check would pass and
  // the payload assigns would read ~4 GiB out of bounds. The CRC is
  // refreshed so only the 64-bit length check can catch the craft.
  LogRecord rec = MakeUpdate(7, "key", "redo", "undo");
  std::string buf;
  rec.AppendTo(&buf);
  const uint32_t len = static_cast<uint32_t>(buf.size());
  OverwriteU32(&buf, 25, 0x80000000u + 3);  // klen += 2^31
  OverwriteU32(&buf, 29, 0x80000000u + 4);  // rlen += 2^31
  OverwriteU32(&buf, len - 4, MaskCrc(Crc32c(0, buf.data(), len - 4)));
  Slice in(buf);
  EXPECT_TRUE(LogRecord::Parse(&in).status().IsCorruption());
}

TEST(ParseLogStreamTest, ZeroFilledTailStopsCleanly) {
  std::string buf;
  MakeUpdate(1, "a", "r", "u").AppendTo(&buf);
  const size_t rec_end = buf.size();
  buf.append(200, '\0');  // Preallocated log file past the durable prefix.
  TornTailInfo tail;
  auto recs = ParseLogStream(Slice(buf), &tail);
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs->size(), 1u);
  EXPECT_EQ(tail.kind, TornTailInfo::Kind::kZeroFill);
  EXPECT_EQ(tail.offset, rec_end);
  EXPECT_EQ(tail.bytes_dropped, 200u);
}

TEST(ParseLogStreamTest, SubMinimumLengthGarbageTailIsBadLength) {
  std::string buf;
  MakeUpdate(1, "a", "r", "u").AppendTo(&buf);
  // Nonzero tail whose length field is below the fixed header + trailer.
  buf += '\x05';
  buf.append(3, '\0');
  buf.append(50, 'g');
  TornTailInfo tail;
  auto recs = ParseLogStream(Slice(buf), &tail);
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs->size(), 1u);
  EXPECT_EQ(tail.kind, TornTailInfo::Kind::kBadLength);
}

TEST(ParseLogStreamTest, CorruptFinalRecordWithZeroPaddingStopsCleanly) {
  std::string buf;
  MakeUpdate(1, "a", "r", "u").AppendTo(&buf);
  const size_t first_end = buf.size();
  MakeUpdate(2, "b", "r", "u").AppendTo(&buf);
  buf[first_end + 20] ^= 1;  // Damage the final record's body.
  buf.append(64, '\0');      // Zero padding follows its extent.
  TornTailInfo tail;
  auto recs = ParseLogStream(Slice(buf), &tail);
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs->size(), 1u);
  EXPECT_EQ(tail.kind, TornTailInfo::Kind::kCorruptRecord);
  EXPECT_EQ(tail.offset, first_end);
}

TEST(ParseLogStreamTest, RecordsCarryTheirStreamOffsets) {
  std::string buf;
  MakeUpdate(1, "a", "r", "u").AppendTo(&buf);
  const size_t second = buf.size();
  MakeUpdate(2, "b", "r", "u").AppendTo(&buf);
  auto recs = ParseLogStream(Slice(buf));
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs->size(), 2u);
  EXPECT_EQ((*recs)[0].lsn, 0u);
  EXPECT_EQ((*recs)[1].lsn, second);
}

TEST(LogRecordTest, TypeNames) {
  EXPECT_STREQ(RecordTypeName(RecordType::kCommit), "Commit");
  EXPECT_STREQ(RecordTypeName(RecordType::kClr), "CLR");
}

// ------------------------------------------------------------ LogManagers --

TEST(SoftwareLogManagerTest, AppendsAssignMonotoneLsns) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::CommodityServer());
  SoftwareLogManager log(&p, &p.ssd());
  std::vector<Lsn> lsns;
  sim.Spawn([](SoftwareLogManager* log, std::vector<Lsn>* lsns) -> Task<> {
    for (int i = 0; i < 5; ++i) {
      Lsn lsn = co_await log->Append(MakeUpdate(1, "k", "r", "u"), 0);
      lsns->push_back(lsn);
    }
  }(&log, &lsns));
  sim.Run();
  ASSERT_EQ(lsns.size(), 5u);
  for (size_t i = 1; i < lsns.size(); ++i) EXPECT_GT(lsns[i], lsns[i - 1]);
  EXPECT_EQ(log.stats().appends, 5u);
  EXPECT_EQ(log.current_lsn(), log.buffer().size());
}

TEST(SoftwareLogManagerTest, ContentionDegradesSerialReserve) {
  // Aether-style inserts overlap their copy phases, so aggregate
  // throughput is bounded by the serialized reserve — whose cost grows
  // with the number of contenders (cacheline ping-pong). More threads
  // must therefore RAISE the per-append service time at the buffer.
  auto run = [](int threads) {
    Simulator sim;
    Platform p(&sim, PlatformSpec::CommodityServer());
    SoftwareLogManager log(&p, &p.ssd());
    for (int t = 0; t < threads; ++t) {
      sim.Spawn([](SoftwareLogManager* log) -> Task<> {
        for (int i = 0; i < 50; ++i) {
          (void)co_await log->Append(MakeUpdate(1, "key", "redo", "undo"), 0);
        }
      }(&log));
    }
    sim.Run();
    const double total_appends = 50.0 * threads;
    return static_cast<double>(sim.Now()) / total_appends;  // ns per append
  };
  const double few = run(8);
  const double many = run(48);
  EXPECT_GT(many, few * 1.5);
  // And per-append latency (not just throughput) also degrades.
  Simulator sim;
  Platform p(&sim, PlatformSpec::CommodityServer());
  SoftwareLogManager log(&p, &p.ssd());
  for (int t = 0; t < 48; ++t) {
    sim.Spawn([](SoftwareLogManager* log) -> Task<> {
      for (int i = 0; i < 20; ++i) {
        (void)co_await log->Append(MakeUpdate(1, "key", "redo", "undo"), 0);
      }
    }(&log));
  }
  sim.Run();
  const double mean_latency =
      static_cast<double>(log.stats().append_wait_ns) /
      static_cast<double>(log.stats().appends);
  EXPECT_GT(mean_latency, 400.0);  // queueing behind 47 contenders
}

TEST(SoftwareLogManagerTest, GroupCommitSharesFlushes) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::CommodityServer());
  SoftwareLogManager log(&p, &p.ssd());
  int committed = 0;
  for (int t = 0; t < 10; ++t) {
    sim.Spawn([](SoftwareLogManager* log, int* committed) -> Task<> {
      Lsn lsn = co_await log->Append(MakeUpdate(1, "k", "r", "u"), 0);
      Status st = co_await log->WaitDurable(lsn + 1);
      EXPECT_TRUE(st.ok());
      ++*committed;
    }(&log, &committed));
  }
  sim.Run();
  EXPECT_EQ(committed, 10);
  EXPECT_EQ(log.durable_lsn(), log.current_lsn());
  // Group commit: far fewer flushes than commits.
  EXPECT_LE(log.stats().flushes, 3u);
}

TEST(HardwareLogManagerTest, AppendsAndDurability) {
  Simulator sim;
  Platform p(&sim, PlatformSpec::ConveyHC2());
  hw::LogInsertionUnit unit(&p);
  HardwareLogManager log(&p, &unit, &p.ssd());
  bool done = false;
  sim.Spawn([](HardwareLogManager* log, bool* done) -> Task<> {
    Lsn last = 0;
    for (int i = 0; i < 20; ++i) {
      last = co_await log->Append(MakeUpdate(1, "k", "rrrr", "uuuu"), 0);
    }
    Status st = co_await log->WaitDurable(last + 1);
    EXPECT_TRUE(st.ok());
    *done = true;
  }(&log, &done));
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(log.stats().appends, 20u);
  EXPECT_EQ(log.durable_lsn(), log.current_lsn());
  EXPECT_EQ(unit.records(), 20u);
}

TEST(HardwareLogManagerTest, ProducesSameStreamAsSoftware) {
  // Both managers must serialize identical bytes for identical records —
  // recovery is backend-agnostic.
  auto run = [](bool hardware) {
    Simulator sim;
    Platform p(&sim, PlatformSpec::ConveyHC2());
    hw::LogInsertionUnit unit(&p);
    std::unique_ptr<LogManager> log;
    if (hardware) {
      log = std::make_unique<HardwareLogManager>(&p, &unit, &p.ssd());
    } else {
      log = std::make_unique<SoftwareLogManager>(&p, &p.ssd());
    }
    sim.Spawn([](LogManager* log) -> Task<> {
      for (int i = 0; i < 10; ++i) {
        (void)co_await log->Append(
            MakeUpdate(static_cast<uint64_t>(i), "k" + std::to_string(i),
                       "redo", "undo"),
            0);
      }
    }(log.get()));
    sim.Run();
    return log->buffer();
  };
  EXPECT_EQ(run(false), run(true));
}

// --------------------------------------------------------------- Recovery --

/// In-memory table for recovery checks.
class MapTarget : public RecoveryTarget {
 public:
  void RedoInsert(uint32_t table, Slice key, Slice value) override {
    data_[{table, key.ToString()}] = value.ToString();
  }
  void RedoUpdate(uint32_t table, Slice key, Slice value) override {
    data_[{table, key.ToString()}] = value.ToString();
  }
  void RedoDelete(uint32_t table, Slice key) override {
    data_.erase({table, key.ToString()});
  }

  std::map<std::pair<uint32_t, std::string>, std::string> data_;
};

std::string BuildLog(
    const std::vector<LogRecord>& records) {
  std::string buf;
  for (const auto& r : records) r.AppendTo(&buf);
  return buf;
}

LogRecord Ctl(RecordType t, uint64_t txn) {
  LogRecord rec;
  rec.type = t;
  rec.txn_id = txn;
  return rec;
}

LogRecord Op(RecordType t, uint64_t txn, const std::string& key,
             const std::string& redo) {
  LogRecord rec;
  rec.type = t;
  rec.txn_id = txn;
  rec.table_id = 1;
  rec.key = key;
  rec.redo = redo;
  return rec;
}

TEST(RecoveryTest, RedoesCommittedSkipsLosers) {
  // txn 1 commits, txn 2 crashes mid-flight, txn 3 aborts explicitly.
  std::string log = BuildLog({
      Ctl(RecordType::kBegin, 1),
      Op(RecordType::kInsert, 1, "a", "1"),
      Ctl(RecordType::kBegin, 2),
      Op(RecordType::kInsert, 2, "b", "2"),
      Op(RecordType::kUpdate, 1, "a", "1.1"),
      Ctl(RecordType::kCommit, 1),
      Ctl(RecordType::kBegin, 3),
      Op(RecordType::kInsert, 3, "c", "3"),
      Ctl(RecordType::kAbort, 3),
  });
  MapTarget target;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(Slice(log), &target, &stats).ok());
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.loser_txns, 2u);
  EXPECT_EQ(stats.redo_applied, 2u);
  EXPECT_EQ(stats.redo_skipped, 2u);
  ASSERT_EQ(target.data_.size(), 1u);
  EXPECT_EQ((target.data_.at({1, "a"})), "1.1");
}

TEST(RecoveryTest, DeletesAreRedone) {
  std::string log = BuildLog({
      Ctl(RecordType::kBegin, 1),
      Op(RecordType::kInsert, 1, "x", "v"),
      Op(RecordType::kDelete, 1, "x", ""),
      Ctl(RecordType::kCommit, 1),
  });
  MapTarget target;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(Slice(log), &target, &stats).ok());
  EXPECT_TRUE(target.data_.empty());
}

TEST(RecoveryTest, TxnsSpanningCheckpointAreAccountedAndReplayed) {
  // txn 1 begins before the quiescent checkpoint and commits after it: its
  // pre-checkpoint effect is already in base data, so only the suffix
  // update replays. txn 2 also spans the checkpoint and never commits —
  // it must be counted as a loser even though its kBegin lies before the
  // checkpoint (its suffix records alone mark it as seen).
  std::vector<LogRecord> recs = {
      Ctl(RecordType::kBegin, 1),
      Op(RecordType::kInsert, 1, "a", "1"),
      Ctl(RecordType::kBegin, 2),
      Ctl(RecordType::kCheckpoint, 0),
      Op(RecordType::kUpdate, 1, "a", "1.1"),
      Ctl(RecordType::kCommit, 1),
      Op(RecordType::kInsert, 2, "b", "2"),
  };
  const std::string log = BuildLog(recs);
  MapTarget target;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(Slice(log), &target, &stats).ok());
  EXPECT_EQ(stats.committed_txns, 1u);
  EXPECT_EQ(stats.loser_txns, 1u);
  EXPECT_EQ(stats.redo_applied, 1u);
  EXPECT_EQ(stats.redo_skipped, 1u);
  // checkpoint_lsn is the checkpoint record's own stream offset, not the
  // prev_lsn snapshot taken when the checkpoint began.
  EXPECT_EQ(stats.checkpoint_lsn,
            recs[0].SerializedSize() + recs[1].SerializedSize() +
                recs[2].SerializedSize());
  EXPECT_EQ(target.data_.at({1, "a"}), "1.1");
  EXPECT_EQ(target.data_.count({1, "b"}), 0u);
}

TEST(RecoveryTest, TornTailIgnored) {
  std::string log = BuildLog({
      Ctl(RecordType::kBegin, 1),
      Op(RecordType::kInsert, 1, "a", "1"),
      Ctl(RecordType::kCommit, 1),
  });
  // A commit for txn 2 that never fully reached the device.
  std::string torn = log;
  Ctl(RecordType::kBegin, 2).AppendTo(&torn);
  torn.resize(log.size() + 5);
  MapTarget target;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(Slice(torn), &target, &stats).ok());
  EXPECT_EQ(target.data_.size(), 1u);
}

TEST(RecoveryTest, EndToEndThroughLogManager) {
  // Write through a real log manager, "crash" (keep only the durable
  // prefix), recover, and check exactly the durable committed state.
  Simulator sim;
  Platform p(&sim, PlatformSpec::CommodityServer());
  SoftwareLogManager log(&p, &p.ssd());
  sim.Spawn([](SoftwareLogManager* log) -> Task<> {
    // txn 1: commits and waits durable.
    (void)co_await log->Append(Ctl(RecordType::kBegin, 1), 0);
    (void)co_await log->Append(Op(RecordType::kInsert, 1, "k1", "v1"), 0);
    Lsn c1 = co_await log->Append(Ctl(RecordType::kCommit, 1), 0);
    EXPECT_TRUE((co_await log->WaitDurable(c1 + 1)).ok());
    // txn 2: commit record appended but never flushed before the crash.
    (void)co_await log->Append(Ctl(RecordType::kBegin, 2), 0);
    (void)co_await log->Append(Op(RecordType::kInsert, 2, "k2", "v2"), 0);
    (void)co_await log->Append(Ctl(RecordType::kCommit, 2), 0);
  }(&log));
  sim.Run();

  MapTarget target;
  RecoveryStats stats;
  ASSERT_TRUE(Recover(log.durable_prefix(), &target, &stats).ok());
  EXPECT_EQ(target.data_.size(), 1u);
  EXPECT_EQ((target.data_.at({1, "k1"})), "v1");
  EXPECT_EQ(stats.committed_txns, 1u);
}

}  // namespace
}  // namespace bionicdb::wal
