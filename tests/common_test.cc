// Unit tests for src/common: Status/Result, Slice, RNG/Zipfian, Histogram,
// CRC32C.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace bionicdb {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
  EXPECT_EQ(s.message(), "key 42");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted().IsResourceExhausted());
  EXPECT_TRUE(Status::OutOfMemory().IsOutOfMemory());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Aborted());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    BIONICDB_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 10;
    return Status::Busy();
  };
  auto consume = [&](bool ok) -> Status {
    int v = 0;
    BIONICDB_ASSIGN_OR_RETURN(v, produce(ok));
    EXPECT_EQ(v, 10);
    return Status::OK();
  };
  EXPECT_TRUE(consume(true).ok());
  EXPECT_TRUE(consume(false).IsBusy());
}

// ----------------------------------------------------------------- Slice --

TEST(SliceTest, BasicViews) {
  std::string s = "hello";
  Slice sl(s);
  EXPECT_EQ(sl.size(), 5u);
  EXPECT_EQ(sl.ToString(), "hello");
  EXPECT_EQ(sl[1], 'e');
  EXPECT_FALSE(sl.empty());
  EXPECT_TRUE(Slice().empty());
}

TEST(SliceTest, CompareIsLexicographic) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);   // prefix sorts first
  EXPECT_GT(Slice("abc").Compare(Slice("ab")), 0);
}

TEST(SliceTest, EmbeddedNulBytesCompareCorrectly) {
  std::string a("a\0b", 3);
  std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).Compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

TEST(SliceTest, StartsWithAndRemovePrefix) {
  Slice s("prefix:value");
  EXPECT_TRUE(s.StartsWith("prefix:"));
  EXPECT_FALSE(s.StartsWith("value"));
  s.RemovePrefix(7);
  EXPECT_EQ(s.ToString(), "value");
}

TEST(SliceTest, OperatorsMatchCompare) {
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice("a") == Slice("a"));
  EXPECT_TRUE(Slice("a") != Slice("b"));
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values should appear in 1000 draws
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, AlphaStringRespectsLengthBounds) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.AlphaString(4, 9);
    EXPECT_GE(s.size(), 4u);
    EXPECT_LE(s.size(), 9u);
  }
}

TEST(RngTest, NURandStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NURand(255, 0, 999, 123);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 999);
  }
}

TEST(ZipfianTest, SkewsTowardLowIds) {
  ZipfianGenerator zipf(1000, 0.99, 5);
  std::map<uint64_t, int> counts;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next()]++;
  // Item 0 must be far more popular than the median item.
  EXPECT_GT(counts[0], kDraws / 100);
  int tail = 0;
  for (auto& [k, v] : counts)
    if (k >= 500) tail += v;
  EXPECT_LT(tail, kDraws / 4);  // the top half of ids gets < 25% of draws
}

TEST(ZipfianTest, AllDrawsInRange) {
  ZipfianGenerator zipf(50, 0.8, 3);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(), 50u);
}

TEST(RandomPermutationTest, IsAPermutation) {
  Rng rng(23);
  auto p = RandomPermutation(100, &rng);
  std::set<uint32_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 99u);
}

// -------------------------------------------------------------- Histogram --

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.Mean(), 1000.0);
  // Log-bucketed: allow the bucket's relative error.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 1000.0, 1000.0 * 0.07);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<int64_t>(rng.Uniform(100000)));
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.max());
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000.0, 5000.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000000);
}

TEST(HistogramTest, MergeEmptyIsIdentityBothWays) {
  Histogram a, empty;
  a.Add(42);
  a.Merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42);
  EXPECT_EQ(a.max(), 42);
  empty.Merge(a);  // merging INTO an empty one adopts the source stats
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 42);
  EXPECT_EQ(empty.max(), 42);
  Histogram e1, e2;
  e1.Merge(e2);  // empty + empty stays empty
  EXPECT_EQ(e1.count(), 0u);
}

// "Mismatched bucket bounds" cannot be rejected at run time because they
// cannot be constructed: every Histogram shares one compile-time layout
// (kBuckets log-spaced ranges), so Merge() is always bucket-compatible.
// This test pins that invariant — same value lands in the same bucket of
// any two instances, so a merge is a plain per-bucket sum.
TEST(HistogramTest, BucketLayoutIsSharedByConstruction) {
  Histogram a, b;
  for (int64_t v : {0LL, 1LL, 17LL, 4096LL, 123456789LL}) {
    a.Add(v);
    b.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 10u);
  // Identical per-bucket contents => identical percentile answers.
  EXPECT_EQ(a.Percentile(50), b.Percentile(50));
  EXPECT_EQ(a.Percentile(99.9), b.Percentile(99.9));
}

TEST(HistogramTest, P999OnSparseDataClampsToMax) {
  Histogram h;
  // Three samples: p99.9 rank falls on the last one; the log-bucketed
  // answer must clamp to the exact recorded max, not the bucket bound.
  h.Add(100);
  h.Add(200);
  h.Add(1000000007);
  EXPECT_EQ(h.Percentile(99.9), 1000000007);
  // Single sample: every percentile is that sample.
  Histogram one;
  one.Add(5);
  EXPECT_EQ(one.Percentile(99.9), 5);
  // Empty: percentile of nothing is zero, not UB.
  Histogram empty;
  EXPECT_EQ(empty.Percentile(99.9), 0);
}

TEST(HistogramTest, CountAboveThresholds) {
  Histogram h;
  EXPECT_EQ(h.CountAbove(0), 0u);  // empty
  for (int64_t v = 1; v <= 1000; ++v) h.Add(v);
  EXPECT_EQ(h.CountAbove(-1), 1000u);   // below min: everything
  EXPECT_EQ(h.CountAbove(h.max()), 0u); // at/above max: nothing
  EXPECT_EQ(h.CountAbove(1000000), 0u);
  // Bucket-granularity upper bound on the strict count: never undercounts,
  // and overshoots by at most the threshold's own bucket width.
  const uint64_t above = h.CountAbove(500);
  EXPECT_GE(above, 500u);
  EXPECT_LE(above, 505u);  // bucket holding 500 spans 496..511
}

TEST(HistogramTest, CountAboveExactBelowSixteen) {
  // Values < 16 land in single-value buckets, so every small threshold is
  // a bucket upper bound and the answer is exact.
  Histogram h;
  for (int64_t v = 0; v < 16; ++v) h.Add(v);
  for (int64_t t = 0; t < 15; ++t) {
    EXPECT_EQ(h.CountAbove(t), static_cast<uint64_t>(15 - t)) << "t=" << t;
  }
}

TEST(HistogramTest, CountAboveMidBucketNeverDropsTailSamples) {
  // Regression: 500 and 510 share a log bucket (496..511). A threshold of
  // 500 used to start the walk one bucket later and answer 0 — silently
  // dropping the sample at 510 that is strictly above the threshold.
  Histogram h;
  h.Add(100);
  h.Add(510);
  EXPECT_GE(h.CountAbove(500), 1u);
  // And the conservative include never pulls in earlier buckets: samples
  // strictly below the threshold's bucket stay excluded.
  EXPECT_LE(h.CountAbove(500), 2u);
  EXPECT_EQ(h.CountAbove(511), 0u);  // 511 == bucket upper bound: exact
}

TEST(HistogramTest, CountAboveBucketBoundaryIsExact) {
  // 511 is the upper bound of the bucket holding 496..511; a sample AT the
  // boundary must not be counted above it, while the next bucket must be.
  Histogram h;
  h.Add(511);
  h.Add(512);
  EXPECT_EQ(h.CountAbove(511), 1u);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1500);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, PercentileZeroReturnsMin) {
  Histogram h;
  h.Add(500);
  h.Add(9000);
  // p=0 used to walk into the (possibly empty) first bucket and answer 0.
  EXPECT_EQ(h.Percentile(0), 500);
  EXPECT_EQ(h.Percentile(-3), 500);
}

TEST(HistogramTest, SingleSamplePercentilesAllEqual) {
  Histogram h;
  h.Add(777);
  EXPECT_EQ(h.Percentile(0), 777);
  EXPECT_EQ(h.Percentile(50), 777);
  EXPECT_EQ(h.Percentile(99), 777);
  EXPECT_EQ(h.Percentile(100), 777);
}

TEST(HistogramTest, OverflowBucketSaturates) {
  Histogram h;
  const int64_t huge = std::numeric_limits<int64_t>::max() - 7;
  h.Add(huge);
  // The top power-of-two ranges used to left-shift past int64 (UB); the
  // bucket bound must saturate and then clamp to the recorded max.
  EXPECT_EQ(h.Percentile(50), huge);
  EXPECT_EQ(h.Percentile(100), huge);
  EXPECT_EQ(h.max(), huge);
}

TEST(FormatNanosTest, PicksAdaptiveUnits) {
  EXPECT_EQ(FormatNanos(412), "412ns");
  EXPECT_EQ(FormatNanos(1300), "1.3us");
  EXPECT_EQ(FormatNanos(2500000), "2.50ms");
  EXPECT_EQ(FormatNanos(1.2e9), "1.200s");
}

// ------------------------------------------------------------------ CRC32 --

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") == 0xE3069283.
  const char* s = "123456789";
  EXPECT_EQ(Crc32c(0, s, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32c(0, "", 0), 0u); }

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data(64, 'x');
  uint32_t base = Crc32c(0, data.data(), data.size());
  data[17] ^= 1;
  EXPECT_NE(base, Crc32c(0, data.data(), data.size()));
}

TEST(Crc32Test, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

}  // namespace
}  // namespace bionicdb
