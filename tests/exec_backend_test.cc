// Differential tests: the threaded execution backend against the simulator
// as determinism oracle (docs/EXECUTION.md). The same workload stream on
// the same seed must produce the same per-transaction status codes and the
// same final table contents on both backends, for every engine mode; a
// concurrent threaded run must match a WAL-replay reconstruction; and the
// crash harness must never find an acknowledged commit missing from the
// durable log.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "exec/threaded.h"
#include "sim/simulator.h"
#include "wal/record.h"
#include "workload/tatp.h"
#include "workload/tpcc.h"

namespace bionicdb::exec {
namespace {

using engine::Engine;
using engine::EngineConfig;
using engine::EngineMode;
using sim::Simulator;
using workload::TatpConfig;
using workload::TatpWorkload;
using workload::TpccConfig;
using workload::TpccWorkload;

EngineConfig ConfigFor(EngineMode mode) {
  switch (mode) {
    case EngineMode::kConventional:
      return EngineConfig::Conventional();
    case EngineMode::kDora: {
      EngineConfig c = EngineConfig::Dora();
      c.num_partitions = 4;
      return c;
    }
    case EngineMode::kBionic: {
      EngineConfig c = EngineConfig::Bionic();
      c.num_partitions = 4;
      return c;
    }
  }
  return EngineConfig::Dora();
}

/// Final state: per-table sorted (key, record) contents.
using TableDump = std::vector<std::pair<std::string, std::string>>;

std::vector<TableDump> DumpTables(Engine& engine) {
  std::vector<TableDump> dumps;
  for (uint32_t i = 0; i < engine.db().num_tables(); ++i) {
    dumps.push_back(engine.db().GetTable(i)->ScanAll());
  }
  return dumps;
}

struct SeqResult {
  std::vector<int> codes;  ///< Status code per transaction, in order.
  std::vector<TableDump> tables;
};

sim::Task<void> DriveSimTatp(Engine* eng, TatpWorkload* w, int n,
                             std::vector<int>* codes) {
  for (int i = 0; i < n; ++i) {
    uint64_t priority = 0;
    Status st = co_await eng->Execute(w->NextTransaction(), 0, &priority);
    codes->push_back(static_cast<int>(st.code()));
  }
  co_await eng->Shutdown();
}

SeqResult RunSimTatp(EngineMode mode, uint64_t seed, int n) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(mode));
  TatpConfig wcfg;
  wcfg.subscribers = 300;
  wcfg.seed = seed;
  TatpWorkload tatp(&engine, wcfg);
  EXPECT_TRUE(tatp.Load().ok());
  engine.Start();
  SeqResult r;
  sim.Spawn(DriveSimTatp(&engine, &tatp, n, &r.codes));
  sim.Run();
  r.tables = DumpTables(engine);
  return r;
}

SeqResult RunThreadedTatp(EngineMode mode, uint64_t seed, int n) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(mode));
  TatpConfig wcfg;
  wcfg.subscribers = 300;
  wcfg.seed = seed;
  TatpWorkload tatp(&engine, wcfg);
  EXPECT_TRUE(tatp.Load().ok());
  ThreadedBackend::Config bcfg;
  bcfg.wal.fsync_latency_us = 1;
  ThreadedBackend backend(&engine, bcfg);
  backend.Start();
  SeqResult r;
  for (int i = 0; i < n; ++i) {
    uint64_t priority = 0;
    Status st = backend.Execute(tatp.NextTransaction(), &priority);
    r.codes.push_back(static_cast<int>(st.code()));
  }
  backend.Shutdown();
  r.tables = DumpTables(engine);
  return r;
}

class BackendModeTest : public ::testing::TestWithParam<EngineMode> {};

// The determinism-oracle contract, sequentially: same seed, same workload
// stream -> identical status codes and identical final B+Tree contents on
// both backends. Three seeds per mode.
TEST_P(BackendModeTest, TatpSequentialMatchesSimulator) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    SeqResult simulated = RunSimTatp(GetParam(), seed, 200);
    SeqResult threaded = RunThreadedTatp(GetParam(), seed, 200);
    EXPECT_EQ(simulated.codes, threaded.codes) << "seed " << seed;
    ASSERT_EQ(simulated.tables.size(), threaded.tables.size());
    for (size_t t = 0; t < simulated.tables.size(); ++t) {
      EXPECT_EQ(simulated.tables[t], threaded.tables[t])
          << "seed " << seed << " table " << t;
    }
  }
}

sim::Task<void> DriveSimTpcc(Engine* eng, TpccWorkload* w, int n,
                             std::vector<int>* codes) {
  for (int i = 0; i < n; ++i) {
    uint64_t priority = 0;
    Status st = co_await eng->Execute(w->NextTransaction(), 0, &priority);
    codes->push_back(static_cast<int>(st.code()));
  }
  co_await eng->Shutdown();
}

// TPC-C adds dynamic phases (StockLevel) and multi-phase read-write mixes.
TEST_P(BackendModeTest, TpccSequentialMatchesSimulator) {
  TpccConfig wcfg;
  wcfg.customers_per_district = 60;
  wcfg.items = 200;
  wcfg.initial_orders_per_district = 10;

  Simulator sim_a;
  Engine sim_engine(&sim_a, ConfigFor(GetParam()));
  TpccWorkload sim_w(&sim_engine, wcfg);
  ASSERT_TRUE(sim_w.Load().ok());
  sim_engine.Start();
  std::vector<int> sim_codes;
  sim_a.Spawn(DriveSimTpcc(&sim_engine, &sim_w, 120, &sim_codes));
  sim_a.Run();

  Simulator sim_b;
  Engine thr_engine(&sim_b, ConfigFor(GetParam()));
  TpccWorkload thr_w(&thr_engine, wcfg);
  ASSERT_TRUE(thr_w.Load().ok());
  ThreadedBackend::Config bcfg;
  bcfg.wal.fsync_latency_us = 1;
  ThreadedBackend backend(&thr_engine, bcfg);
  backend.Start();
  std::vector<int> thr_codes;
  for (int i = 0; i < 120; ++i) {
    uint64_t priority = 0;
    Status st = backend.Execute(thr_w.NextTransaction(), &priority);
    thr_codes.push_back(static_cast<int>(st.code()));
  }
  backend.Shutdown();

  EXPECT_EQ(sim_codes, thr_codes);
  std::vector<TableDump> a = DumpTables(sim_engine);
  std::vector<TableDump> b = DumpTables(thr_engine);
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t], b[t]) << "table " << t;
  }
}

// Concurrent runs are not deterministic, so the oracle shifts: replay the
// threaded backend's own WAL (redo of committed transactions, in LSN
// order) into a freshly loaded database and demand the same final state.
// Partition locks are held across commit durability, so log order agrees
// with the serialization order on every key.
TEST_P(BackendModeTest, TatpConcurrentMatchesWalReplay) {
  const uint64_t seed = 11;
  Simulator sim;
  Engine engine(&sim, ConfigFor(GetParam()));
  TatpConfig wcfg;
  wcfg.subscribers = 300;
  wcfg.seed = seed;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  ThreadedBackend::Config bcfg;
  bcfg.wal.fsync_latency_us = 5;
  ThreadedBackend backend(&engine, bcfg);
  backend.Start();
  ThreadedBackend::RunOptions options;
  options.clients = 4;
  options.warmup_txns = 0;
  options.measured_txns = 400;
  ThreadedBackend::RunReport report =
      backend.RunClosedLoop([&] { return tatp.NextTransaction(); }, options);
  backend.Shutdown();  // final flush: DurablePrefix() is the whole stream
  EXPECT_GT(report.committed, 0u);

  const std::string stream = backend.wal().DurablePrefix();
  auto parsed = wal::ParseLogStream(Slice(stream));
  ASSERT_TRUE(parsed.ok());

  std::set<uint64_t> committed;
  for (const wal::LogRecord& rec : *parsed) {
    if (rec.type == wal::RecordType::kCommit) committed.insert(rec.txn_id);
  }

  // Oracle: same seed, load only, then redo.
  Simulator oracle_sim;
  Engine oracle(&oracle_sim, ConfigFor(GetParam()));
  TatpWorkload oracle_w(&oracle, wcfg);
  ASSERT_TRUE(oracle_w.Load().ok());
  for (const wal::LogRecord& rec : *parsed) {
    if (committed.count(rec.txn_id) == 0) continue;
    engine::Table* table = oracle.db().GetTable(rec.table_id);
    switch (rec.type) {
      case wal::RecordType::kInsert:
      case wal::RecordType::kUpdate:
        ASSERT_TRUE(table->BasePut(rec.key, Slice(rec.redo)).ok());
        break;
      case wal::RecordType::kDelete:
        ASSERT_TRUE(table->BaseDelete(rec.key).ok());
        break;
      default:
        break;  // begin/commit/clr/abort/checkpoint carry no redo here
    }
  }

  std::vector<TableDump> live = DumpTables(engine);
  std::vector<TableDump> replayed = DumpTables(oracle);
  ASSERT_EQ(live.size(), replayed.size());
  for (size_t t = 0; t < live.size(); ++t) {
    EXPECT_EQ(live[t], replayed[t]) << "table " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, BackendModeTest,
                         ::testing::Values(EngineMode::kConventional,
                                           EngineMode::kDora,
                                           EngineMode::kBionic),
                         [](const auto& info) {
                           return engine::EngineModeName(info.param);
                         });

// Crash-harness smoke on the threaded WAL flusher: after Crash(), every
// already-acknowledged write commit must have its commit record inside the
// frozen durable prefix, and no later write transaction is acknowledged.
TEST(ExecBackendCrashTest, AcknowledgedCommitsAreDurable) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(EngineMode::kDora));
  TatpConfig wcfg;
  wcfg.subscribers = 200;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  ThreadedBackend::Config bcfg;
  bcfg.wal.fsync_latency_us = 20;
  ThreadedBackend backend(&engine, bcfg);
  backend.Start();

  for (int i = 0; i < 150; ++i) {
    uint64_t priority = 0;
    backend.Execute(tatp.NextTransaction(), &priority);
  }
  backend.wal().Crash();

  // Post-crash write transactions must never be acknowledged.
  for (int i = 0; i < 20; ++i) {
    uint64_t priority = 0;
    Status st =
        backend.Execute(tatp.MakeUpdateSubscriberData(i % 200), &priority);
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(st.IsIOError()) << st.message();
  }

  const ThreadedStats stats = backend.stats();
  const uint64_t acknowledged_writes = stats.commits - stats.read_only_commits;
  EXPECT_GT(stats.durability_failures, 0u);

  const std::string durable = backend.wal().DurablePrefix();
  auto parsed = wal::ParseLogStream(Slice(durable));
  ASSERT_TRUE(parsed.ok());
  uint64_t durable_commits = 0;
  for (const wal::LogRecord& rec : *parsed) {
    if (rec.type == wal::RecordType::kCommit) ++durable_commits;
  }
  // Every acknowledged write commit is durable (the converse — durable but
  // unacknowledged — is legal: the crash may land between flush and ack).
  EXPECT_LE(acknowledged_writes, durable_commits);
  backend.Shutdown();
}

// Group commit is real: concurrent committers share flushes, so flush
// count stays well below append count under load.
TEST(ExecBackendCrashTest, GroupCommitBatchesFlushes) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(EngineMode::kDora));
  TatpConfig wcfg;
  wcfg.subscribers = 200;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  ThreadedBackend::Config bcfg;
  bcfg.wal.fsync_latency_us = 100;
  ThreadedBackend backend(&engine, bcfg);
  backend.Start();
  ThreadedBackend::RunOptions options;
  options.clients = 8;
  options.warmup_txns = 0;
  options.measured_txns = 200;
  backend.RunClosedLoop([&] { return tatp.NextTransaction(); }, options);
  const ThreadedWal::Stats wal = backend.wal().stats();
  backend.Shutdown();
  ASSERT_GT(wal.appends, 0u);
  EXPECT_LT(wal.flushes, wal.appends);
}

// Wall-clock open loop: a real arrival thread offers load through the
// bounded queue while server threads drain it. Smoke-checks the counter
// reconciliation (offered == admitted + shed) and that goodput is real.
// Runs under TSan in CI — the shared queue and report merging must be
// clean.
TEST(ExecBackendOpenLoopTest, OpenLoopOffersShedsAndCommits) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(EngineMode::kDora));
  TatpConfig wcfg;
  wcfg.subscribers = 500;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  ThreadedBackend backend(&engine, ThreadedBackend::Config{});
  backend.Start();

  ThreadedBackend::OpenLoopOptions options;
  options.offered_tps = 20000;
  options.warmup_s = 0.05;
  options.duration_s = 0.25;
  options.queue_depth = 128;
  options.servers = 4;
  ThreadedBackend::OpenLoopReport report =
      backend.RunOpenLoop([&] { return tatp.NextTransaction(); }, options);
  backend.Shutdown();

  EXPECT_GT(report.offered, 0u);
  EXPECT_EQ(report.offered, report.admitted + report.shed);
  EXPECT_GT(report.completed, 0u);
  EXPECT_GT(report.committed, 0u);
  EXPECT_LE(report.committed, report.completed);
  EXPECT_GT(report.goodput_tps, 0.0);
  EXPECT_EQ(report.sojourn.count(), report.completed);
  EXPECT_GT(report.sojourn.Percentile(50), 0);
}

// Overload on the wall clock: offer far beyond what four servers with a
// slow simulated fsync can absorb; the bounded queue must shed rather
// than grow, and served goodput must survive.
TEST(ExecBackendOpenLoopTest, OpenLoopOverloadSheds) {
  Simulator sim;
  Engine engine(&sim, ConfigFor(EngineMode::kDora));
  TatpConfig wcfg;
  wcfg.subscribers = 200;
  TatpWorkload tatp(&engine, wcfg);
  ASSERT_TRUE(tatp.Load().ok());
  ThreadedBackend::Config bcfg;
  bcfg.wal.fsync_latency_us = 200;  // throttle service capacity
  ThreadedBackend backend(&engine, bcfg);
  backend.Start();

  ThreadedBackend::OpenLoopOptions options;
  options.offered_tps = 200000;
  options.warmup_s = 0.02;
  options.duration_s = 0.2;
  options.queue_depth = 32;
  options.servers = 2;
  ThreadedBackend::OpenLoopReport report =
      backend.RunOpenLoop([&] { return tatp.NextTransaction(); }, options);
  backend.Shutdown();

  EXPECT_EQ(report.offered, report.admitted + report.shed);
  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.committed, 0u);
}

}  // namespace
}  // namespace bionicdb::exec
