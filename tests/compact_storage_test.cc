// Memory-lean storage tests: the slabbed record heap, the front-coded
// packed key index, the CompactStore load/finalize/serve life cycle with
// its post-load delta, and a TATP run through a compact-storage engine
// producing the same commits as the paged/B+Tree engine.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "sim/simulator.h"
#include "storage/compact.h"
#include "storage/slab.h"
#include "workload/driver.h"
#include "workload/tatp.h"

namespace bionicdb::storage {
namespace {

// ----------------------------------------------------------- slab heap --

TEST(SlabHeapTest, InsertGetRoundTrip) {
  SlabHeap heap;
  std::vector<std::pair<uint64_t, std::string>> rows;
  for (int i = 0; i < 1000; ++i) {
    const std::string rec = "record-" + std::to_string(i * 7919);
    rows.emplace_back(heap.Insert(Slice(rec)), rec);
  }
  for (const auto& [h, rec] : rows) {
    EXPECT_EQ(heap.Get(h).ToString(), rec);
  }
  EXPECT_GT(heap.live_bytes(), 0u);
  EXPECT_EQ(heap.dead_bytes(), 0u);
  EXPECT_EQ(heap.allocated_bytes() % SlabHeap::kSlabBytes, 0u);
}

TEST(SlabHeapTest, UpdateInPlaceWithinCapacity) {
  SlabHeap heap;
  const uint64_t h = heap.Insert(Slice("12345678"));  // cap rounds to 8
  EXPECT_TRUE(heap.UpdateInPlace(h, Slice("abcdefgh")));
  EXPECT_EQ(heap.Get(h).ToString(), "abcdefgh");
  // Shrinking fits too.
  EXPECT_TRUE(heap.UpdateInPlace(h, Slice("xy")));
  EXPECT_EQ(heap.Get(h).ToString(), "xy");
  // Growth past the entry's capacity is refused, entry untouched.
  EXPECT_FALSE(heap.UpdateInPlace(h, Slice("123456789")));
  EXPECT_EQ(heap.Get(h).ToString(), "xy");
}

TEST(SlabHeapTest, NoteDeadAccountsFreedSpace) {
  SlabHeap heap;
  const uint64_t h1 = heap.Insert(Slice("aaaaaaaa"));
  const uint64_t h2 = heap.Insert(Slice("bbbbbbbb"));
  const uint64_t live_before = heap.live_bytes();
  heap.NoteDead(h1);
  EXPECT_LT(heap.live_bytes(), live_before);
  EXPECT_GT(heap.dead_bytes(), 0u);
  // The surviving record is untouched.
  EXPECT_EQ(heap.Get(h2).ToString(), "bbbbbbbb");
}

TEST(SlabHeapTest, RecordsNeverSpanSlabs) {
  SlabHeap heap;
  // Fill most of a slab, then insert something that cannot fit the tail.
  const std::string big(40000, 'x');
  const uint64_t h1 = heap.Insert(Slice(big));
  const uint64_t h2 = heap.Insert(Slice(big));  // forces a fresh slab
  EXPECT_EQ(heap.Get(h1).size(), big.size());
  EXPECT_EQ(heap.Get(h2).size(), big.size());
  EXPECT_GE(heap.allocated_bytes(), 2 * SlabHeap::kSlabBytes);
}

// ----------------------------------------------------- packed key index --

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "subscriber/%08d", i);
  return buf;
}

TEST(PackedKeyIndexTest, RankAndLowerBound) {
  std::vector<std::pair<std::string, uint64_t>> run;
  for (int i = 0; i < 500; ++i) run.emplace_back(Key(2 * i), uint64_t(i));
  PackedKeyIndex idx;
  idx.Build(std::move(run));

  ASSERT_EQ(idx.size(), 500u);
  EXPECT_GE(idx.height(), 1);
  for (int i = 0; i < 500; ++i) {
    const size_t rank = idx.Rank(Slice(Key(2 * i)));
    ASSERT_NE(rank, PackedKeyIndex::kNpos) << Key(2 * i);
    EXPECT_EQ(idx.value(rank), uint64_t(i));
    // Odd keys are absent; LowerBound lands on the next even key.
    EXPECT_EQ(idx.Rank(Slice(Key(2 * i + 1))), PackedKeyIndex::kNpos);
    EXPECT_EQ(idx.LowerBound(Slice(Key(2 * i + 1))), size_t(i + 1));
  }
  EXPECT_EQ(idx.LowerBound(Slice("zzz")), idx.size());
  EXPECT_EQ(idx.LowerBound(Slice("")), 0u);
}

TEST(PackedKeyIndexTest, IteratorDecodesEveryKeyInOrder) {
  std::vector<std::pair<std::string, uint64_t>> run;
  for (int i = 0; i < 300; ++i) run.emplace_back(Key(i), uint64_t(i) * 10);
  PackedKeyIndex idx;
  idx.Build(std::move(run));

  int i = 0;
  for (auto it = idx.IteratorAt(0); it.Valid(); it.Next(), ++i) {
    EXPECT_EQ(it.key().ToString(), Key(i));
    EXPECT_EQ(it.value(), uint64_t(i) * 10);
  }
  EXPECT_EQ(i, 300);
}

TEST(PackedKeyIndexTest, FrontCodingBeatsRawKeys) {
  std::vector<std::pair<std::string, uint64_t>> run;
  uint64_t raw = 0;
  for (int i = 0; i < 10000; ++i) {
    run.emplace_back(Key(i), uint64_t(i));
    raw += run.back().first.size();
  }
  PackedKeyIndex idx;
  idx.Build(std::move(run));
  // Shared "subscriber/000..." prefixes compress away; the index must
  // undercut raw keys even counting its value array and directories.
  EXPECT_LT(idx.memory_bytes(), raw + 10000 * sizeof(uint64_t));
}

TEST(PackedKeyIndexTest, ValuesAreUpdatableInPlace) {
  std::vector<std::pair<std::string, uint64_t>> run;
  for (int i = 0; i < 100; ++i) run.emplace_back(Key(i), 0);
  PackedKeyIndex idx;
  idx.Build(std::move(run));
  const size_t rank = idx.Rank(Slice(Key(42)));
  ASSERT_NE(rank, PackedKeyIndex::kNpos);
  idx.set_value(rank, 777);
  EXPECT_EQ(idx.value(idx.Rank(Slice(Key(42)))), 777u);
}

// --------------------------------------------------------- compact store --

TEST(CompactStoreTest, LoadFinalizeServe) {
  CompactStore store;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Load(Slice(Key(i)), Slice("v" + std::to_string(i))).ok());
  }
  store.Finalize();
  ASSERT_TRUE(store.finalized());
  for (int i = 0; i < 200; ++i) {
    int visits = 0;
    auto r = store.Get(Slice(Key(i)), &visits);
    ASSERT_TRUE(r.ok()) << Key(i);
    EXPECT_EQ(r->ToString(), "v" + std::to_string(i));
    EXPECT_GE(visits, 1);
  }
  EXPECT_FALSE(store.Get(Slice("missing"), nullptr).ok());
  EXPECT_GT(store.memory_bytes(), 0u);
}

TEST(CompactStoreTest, DeltaAbsorbsPostLoadMutations) {
  CompactStore store;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Load(Slice(Key(i)), Slice("packed")).ok());
  }
  store.Finalize();

  // Overwrite a packed row, insert a new row, delete a packed row.
  ASSERT_TRUE(store.Put(Slice(Key(10)), Slice("updated")).ok());
  ASSERT_TRUE(store.Put(Slice("zzz-new"), Slice("fresh")).ok());
  ASSERT_TRUE(store.Delete(Slice(Key(20))).ok());

  EXPECT_EQ(store.Get(Slice(Key(10)), nullptr)->ToString(), "updated");
  EXPECT_EQ(store.Get(Slice("zzz-new"), nullptr)->ToString(), "fresh");
  EXPECT_FALSE(store.Contains(Slice(Key(20))));
  EXPECT_FALSE(store.Get(Slice(Key(20)), nullptr).ok());
  EXPECT_TRUE(store.Contains(Slice(Key(30))));  // untouched packed row
}

std::map<std::string, std::string> ScanAllOf(const CompactStore& store) {
  std::map<std::string, std::string> out;
  store.Scan(Slice(""), Slice(), [&](Slice k, Slice v) {
    out[k.ToString()] = v.ToString();
    return true;
  });
  return out;
}

TEST(CompactStoreTest, ScanMergesPackedAndDelta) {
  CompactStore store;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Load(Slice(Key(i)), Slice("p")).ok());
  }
  store.Finalize();
  ASSERT_TRUE(store.Put(Slice(Key(5)), Slice("patched")).ok());
  ASSERT_TRUE(store.Delete(Slice(Key(7))).ok());
  ASSERT_TRUE(store.Put(Slice(Key(100)), Slice("delta-only")).ok());

  const auto all = ScanAllOf(store);
  EXPECT_EQ(all.size(), 20u);  // 20 - 1 deleted + 1 inserted
  EXPECT_EQ(all.at(Key(5)), "patched");
  EXPECT_EQ(all.count(Key(7)), 0u);
  EXPECT_EQ(all.at(Key(100)), "delta-only");

  // Bounded scan respects [lo, hi).
  std::vector<std::string> seen;
  store.Scan(Slice(Key(3)), Slice(Key(6)), [&](Slice k, Slice) {
    seen.push_back(k.ToString());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::string>{Key(3), Key(4), Key(5)}));
}

TEST(CompactStoreTest, CompactFoldsDeltaBack) {
  CompactStore store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Load(Slice(Key(i)), Slice("p")).ok());
  }
  store.Finalize();
  ASSERT_TRUE(store.Put(Slice(Key(3)), Slice("patched")).ok());
  ASSERT_TRUE(store.Delete(Slice(Key(4))).ok());
  ASSERT_TRUE(store.Put(Slice("zzz"), Slice("new")).ok());
  const auto before = ScanAllOf(store);

  // Compact returns the size of the rebuilt packed run: 100 loaded - 1
  // deleted + 1 inserted.
  EXPECT_EQ(store.Compact(), before.size());
  // Same logical content, now fully packed; a second Compact is a
  // content-preserving no-op rebuild.
  EXPECT_EQ(ScanAllOf(store), before);
  EXPECT_EQ(store.Compact(), before.size());
  EXPECT_EQ(store.Get(Slice(Key(3)), nullptr)->ToString(), "patched");
  EXPECT_FALSE(store.Contains(Slice(Key(4))));
}

// ------------------------------------------------------- engine e2e --

/// A compact-storage engine must produce exactly the same closed-loop
/// TATP outcome as the paged/B+Tree engine: commits and final table
/// contents. Single client, so no wait-die races: any outcome
/// difference would be a data divergence, not a timing artifact.
/// (Virtual time is NOT compared — probe costs are modeled per
/// structure, and differing is the point.)
TEST(CompactEngineTest, TatpMatchesPagedEngineOutcome) {
  using engine::Engine;
  using engine::EngineConfig;
  using workload::DriverConfig;
  using workload::TatpConfig;
  using workload::TatpWorkload;

  const auto run = [](bool compact) {
    sim::Simulator sim;
    EngineConfig cfg = EngineConfig::Dora();
    cfg.num_partitions = 4;
    cfg.compact_storage = compact;
    Engine engine(&sim, cfg);
    TatpConfig wcfg;
    wcfg.subscribers = 300;
    TatpWorkload tatp(&engine, wcfg);
    BIONICDB_CHECK(tatp.Load().ok());
    DriverConfig dcfg;
    dcfg.clients = 1;
    dcfg.warmup_txns = 50;
    dcfg.measured_txns = 500;
    sim.Spawn(workload::RunClosedLoop(
        &engine, [&] { return tatp.NextTransaction(); }, dcfg, nullptr));
    sim.Run();

    std::map<std::string, std::string> state;
    for (uint32_t id = 0; id < engine.db().num_tables(); ++id) {
      engine::Table* t = engine.db().GetTable(id);
      for (auto& [k, v] : t->ScanAll()) state[t->name() + "/" + k] = v;
    }
    return std::make_pair(engine.metrics().commits, state);
  };

  const auto [paged_commits, paged_state] = run(false);
  const auto [compact_commits, compact_state] = run(true);
  EXPECT_EQ(compact_commits, paged_commits);
  EXPECT_EQ(compact_state, paged_state);
  EXPECT_GT(paged_commits, 0u);
}

}  // namespace
}  // namespace bionicdb::storage
