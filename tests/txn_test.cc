// Tests for the lock manager (2PL + wait-die) and transaction manager
// (lazy begin, commit durability, abort with CLRs).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "hw/platform.h"
#include "sim/simulator.h"
#include "txn/lock_manager.h"
#include "txn/xct_manager.h"
#include "wal/recovery.h"

namespace bionicdb::txn {
namespace {

using hw::Platform;
using hw::PlatformSpec;
using sim::Delay;
using sim::Simulator;
using sim::Task;

// ------------------------------------------------------------ LockManager --

TEST(LockManagerTest, SharedLocksCoexist) {
  Simulator sim;
  LockManager lm(&sim);
  Xct a, b;
  a.id = 1;
  a.priority = 1;
  b.id = 2;
  b.priority = 2;
  int granted = 0;
  sim.Spawn([](LockManager* lm, Xct* x, int* granted) -> Task<> {
    EXPECT_TRUE((co_await lm->Acquire(x, "k", LockMode::kShared)).ok());
    ++*granted;
  }(&lm, &a, &granted));
  sim.Spawn([](LockManager* lm, Xct* x, int* granted) -> Task<> {
    EXPECT_TRUE((co_await lm->Acquire(x, "k", LockMode::kShared)).ok());
    ++*granted;
  }(&lm, &b, &granted));
  sim.Run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(lm.stats().waits, 0u);
  lm.ReleaseAll(&a);
  lm.ReleaseAll(&b);
  EXPECT_EQ(lm.num_locked_keys(), 0u);
}

TEST(LockManagerTest, ExclusiveBlocksUntilRelease) {
  Simulator sim;
  LockManager lm(&sim);
  Xct older, younger;
  older.id = 1;
  older.priority = 1;
  younger.id = 2;
  younger.priority = 2;
  SimTime granted_at = -1;
  // Younger acquires X first; older waits (wait-die lets the old wait).
  sim.Spawn([](Simulator* s, LockManager* lm, Xct* young, Xct* old,
               SimTime* at) -> Task<> {
    EXPECT_TRUE((co_await lm->Acquire(young, "k", LockMode::kExclusive)).ok());
    co_await Delay{s, 0};  // let the older transaction start waiting
    co_await Delay{s, 500};
    lm->ReleaseAll(young);
    (void)old;
    (void)at;
  }(&sim, &lm, &younger, &older, &granted_at));
  sim.Spawn([](Simulator* s, LockManager* lm, Xct* old, SimTime* at) -> Task<> {
    co_await Delay{s, 1};  // ensure the younger one wins the race
    EXPECT_TRUE((co_await lm->Acquire(old, "k", LockMode::kExclusive)).ok());
    *at = s->Now();
    lm->ReleaseAll(old);
  }(&sim, &lm, &older, &granted_at));
  sim.Run();
  EXPECT_EQ(granted_at, 500);
  EXPECT_EQ(lm.stats().waits, 1u);
}

TEST(LockManagerTest, WaitDieAbortsYounger) {
  Simulator sim;
  LockManager lm(&sim);
  Xct older, younger;
  older.id = 1;
  older.priority = 1;
  younger.id = 5;
  younger.priority = 5;
  Status young_status;
  sim.Spawn([](Simulator* s, LockManager* lm, Xct* old, Xct* young,
               Status* out) -> Task<> {
    EXPECT_TRUE((co_await lm->Acquire(old, "k", LockMode::kExclusive)).ok());
    *out = co_await lm->Acquire(young, "k", LockMode::kExclusive);
    lm->ReleaseAll(old);
    (void)s;
  }(&sim, &lm, &older, &younger, &young_status));
  sim.Run();
  EXPECT_TRUE(young_status.IsAborted());
  EXPECT_EQ(lm.stats().wait_die_aborts, 1u);
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  Simulator sim;
  LockManager lm(&sim);
  Xct x;
  x.id = 3;
  x.priority = 3;
  sim.Spawn([](LockManager* lm, Xct* x) -> Task<> {
    EXPECT_TRUE((co_await lm->Acquire(x, "k", LockMode::kShared)).ok());
    EXPECT_TRUE((co_await lm->Acquire(x, "k", LockMode::kShared)).ok());
    // Sole holder: upgrade succeeds.
    EXPECT_TRUE((co_await lm->Acquire(x, "k", LockMode::kExclusive)).ok());
    // X implies S.
    EXPECT_TRUE((co_await lm->Acquire(x, "k", LockMode::kShared)).ok());
  }(&lm, &x));
  sim.Run();
  lm.ReleaseAll(&x);
  EXPECT_EQ(lm.num_locked_keys(), 0u);
}

TEST(LockManagerTest, SharedThenExclusiveQueues) {
  Simulator sim;
  LockManager lm(&sim);
  Xct reader, writer;
  reader.id = 2;  // younger reader holds S
  reader.priority = 2;
  writer.id = 1;  // older writer requests X -> waits
  writer.priority = 1;
  SimTime write_at = -1;
  sim.Spawn([](Simulator* s, LockManager* lm, Xct* r) -> Task<> {
    EXPECT_TRUE((co_await lm->Acquire(r, "k", LockMode::kShared)).ok());
    co_await Delay{s, 300};
    lm->ReleaseAll(r);
  }(&sim, &lm, &reader));
  sim.Spawn([](Simulator* s, LockManager* lm, Xct* w, SimTime* at) -> Task<> {
    co_await Delay{s, 1};
    EXPECT_TRUE((co_await lm->Acquire(w, "k", LockMode::kExclusive)).ok());
    *at = s->Now();
    lm->ReleaseAll(w);
  }(&sim, &lm, &writer, &write_at));
  sim.Run();
  EXPECT_EQ(write_at, 300);
}

// ------------------------------------------------------------- XctManager --

struct TxnFixture {
  Simulator sim;
  Platform platform{&sim, PlatformSpec::CommodityServer()};
  wal::SoftwareLogManager log{&platform, &platform.ssd()};
  XctManager xm{&log};
};

TEST(XctManagerTest, ReadOnlyCommitSkipsLog) {
  TxnFixture f;
  bool done = false;
  f.sim.Spawn([](XctManager* xm, bool* done) -> Task<> {
    auto xct = xm->Begin();
    EXPECT_TRUE((co_await xm->Commit(xct.get(), 0)).ok());
    EXPECT_EQ(xct->state, XctState::kCommitted);
    *done = true;
  }(&f.xm, &done));
  f.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(f.log.stats().appends, 0u);
  EXPECT_EQ(f.xm.stats().read_only_commits, 1u);
}

TEST(XctManagerTest, WriteCommitIsDurable) {
  TxnFixture f;
  f.sim.Spawn([](XctManager* xm, wal::LogManager* log) -> Task<> {
    auto xct = xm->Begin();
    EXPECT_TRUE((co_await xm->LogWrite(xct.get(), wal::RecordType::kInsert, 1,
                                       "key", "value", "", 0))
                    .ok());
    EXPECT_TRUE((co_await xm->Commit(xct.get(), 0)).ok());
    EXPECT_EQ(log->durable_lsn(), log->current_lsn());
  }(&f.xm, &f.log));
  f.sim.Run();
  // Begin + Insert + Commit.
  EXPECT_EQ(f.log.stats().appends, 3u);
  auto records = wal::ParseLogStream(f.log.durable_prefix());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].type, wal::RecordType::kBegin);
  EXPECT_EQ((*records)[1].type, wal::RecordType::kInsert);
  EXPECT_EQ((*records)[2].type, wal::RecordType::kCommit);
  EXPECT_EQ((*records)[1].prev_lsn, 0u);  // chains to the begin record
}

TEST(XctManagerTest, AbortAppliesUndoBackwardsWithClrs) {
  TxnFixture f;
  std::vector<std::string> undone;
  f.sim.Spawn([](XctManager* xm, std::vector<std::string>* undone) -> Task<> {
    auto xct = xm->Begin();
    EXPECT_TRUE((co_await xm->LogWrite(xct.get(), wal::RecordType::kUpdate, 1,
                                       "a", "new_a", "old_a", 0))
                    .ok());
    EXPECT_TRUE((co_await xm->LogWrite(xct.get(), wal::RecordType::kUpdate, 1,
                                       "b", "new_b", "old_b", 0))
                    .ok());
    EXPECT_TRUE((co_await xm->Abort(
                     xct.get(),
                     [&](const UndoEntry& e) {
                       undone->push_back(e.key + "=" + e.before);
                     },
                     0))
                    .ok());
    EXPECT_EQ(xct->state, XctState::kAborted);
  }(&f.xm, &undone));
  f.sim.Run();
  ASSERT_EQ(undone.size(), 2u);
  EXPECT_EQ(undone[0], "b=old_b");  // backwards order
  EXPECT_EQ(undone[1], "a=old_a");
  // Begin + 2 updates + 2 CLRs + abort = 6 records.
  EXPECT_EQ(f.log.stats().appends, 6u);
}

TEST(XctManagerTest, AbortedTxnInvisibleToRecovery) {
  TxnFixture f;
  f.sim.Spawn([](XctManager* xm, wal::LogManager* log) -> Task<> {
    auto committed = xm->Begin();
    EXPECT_TRUE((co_await xm->LogWrite(committed.get(),
                                       wal::RecordType::kInsert, 1, "keep",
                                       "v", "", 0))
                    .ok());
    EXPECT_TRUE((co_await xm->Commit(committed.get(), 0)).ok());

    auto aborted = xm->Begin();
    EXPECT_TRUE((co_await xm->LogWrite(aborted.get(),
                                       wal::RecordType::kInsert, 1, "drop",
                                       "v", "", 0))
                    .ok());
    EXPECT_TRUE(
        (co_await xm->Abort(aborted.get(), [](const UndoEntry&) {}, 0)).ok());
    EXPECT_TRUE((co_await log->WaitDurable(log->current_lsn())).ok());
  }(&f.xm, &f.log));
  f.sim.Run();

  struct Target : wal::RecoveryTarget {
    std::map<std::string, std::string> rows;
    void RedoInsert(uint32_t, Slice k, Slice v) override {
      rows[k.ToString()] = v.ToString();
    }
    void RedoUpdate(uint32_t, Slice k, Slice v) override {
      rows[k.ToString()] = v.ToString();
    }
    void RedoDelete(uint32_t, Slice k) override { rows.erase(k.ToString()); }
  } target;
  wal::RecoveryStats stats;
  ASSERT_TRUE(wal::Recover(f.log.durable_prefix(), &target, &stats).ok());
  EXPECT_EQ(target.rows.size(), 1u);
  EXPECT_TRUE(target.rows.count("keep"));
  EXPECT_FALSE(target.rows.count("drop"));
}

TEST(XctManagerTest, IdsAreMonotone) {
  TxnFixture f;
  auto a = f.xm.Begin();
  auto b = f.xm.Begin();
  EXPECT_LT(a->id, b->id);
  EXPECT_EQ(f.xm.stats().started, 2u);
}

}  // namespace
}  // namespace bionicdb::txn
