// Tests for slotted pages, the simulated disk, the buffer pool, and
// columnar segments.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "sim/simulator.h"
#include "storage/buffer_pool.h"
#include "storage/columnar.h"
#include "storage/disk.h"
#include "storage/page.h"

namespace bionicdb::storage {
namespace {

using sim::Simulator;
using sim::Task;

// ------------------------------------------------------------------- Page --

TEST(PageTest, InitIsEmpty) {
  Page p;
  p.Init(7);
  EXPECT_EQ(p.page_id(), 7u);
  EXPECT_EQ(p.slot_count(), 0);
  EXPECT_EQ(p.live_records(), 0);
  EXPECT_GT(p.ContiguousFreeSpace(), kPageSize - 64);
}

TEST(PageTest, InsertGetRoundTrip) {
  Page p;
  p.Init(1);
  auto s1 = p.Insert("hello");
  auto s2 = p.Insert("world!");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ((*p.Get(*s1)).ToString(), "hello");
  EXPECT_EQ((*p.Get(*s2)).ToString(), "world!");
  EXPECT_EQ(p.live_records(), 2);
}

TEST(PageTest, GetMissingSlotFails) {
  Page p;
  p.Init(1);
  EXPECT_TRUE(p.Get(0).status().IsNotFound());
  auto s = p.Insert("x");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(p.Get(*s + 1).status().IsNotFound());
}

TEST(PageTest, DeleteTombstonesAndReusesSlot) {
  Page p;
  p.Init(1);
  auto s1 = p.Insert("aaa");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(p.Delete(*s1).ok());
  EXPECT_FALSE(p.IsLive(*s1));
  EXPECT_TRUE(p.Get(*s1).status().IsNotFound());
  EXPECT_TRUE(p.Delete(*s1).IsNotFound());
  // Next insert reuses the tombstoned slot.
  auto s2 = p.Insert("bbb");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s1);
}

TEST(PageTest, UpdateInPlaceAndGrow) {
  Page p;
  p.Init(1);
  auto s = p.Insert("0123456789");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.Update(*s, "abc").ok());  // shrink in place
  EXPECT_EQ((*p.Get(*s)).ToString(), "abc");
  ASSERT_TRUE(p.Update(*s, std::string(500, 'x')).ok());  // grow
  EXPECT_EQ((*p.Get(*s)).size(), 500u);
}

TEST(PageTest, FillUntilExhausted) {
  Page p;
  p.Init(1);
  const std::string rec(100, 'r');
  int inserted = 0;
  while (true) {
    auto s = p.Insert(rec);
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  // 8KB page, ~104B per record incl. slot: expect ~78 records.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 85);
}

TEST(PageTest, CompactionReclaimsDeletedSpace) {
  Page p;
  p.Init(1);
  std::vector<uint16_t> slots;
  const std::string rec(100, 'r');
  while (true) {
    auto s = p.Insert(rec);
    if (!s.ok()) break;
    slots.push_back(*s);
  }
  // Delete every other record; contiguous space stays small until compact.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(p.Delete(slots[i]).ok());
  }
  // A 150-byte record does not fit contiguously but fits after compaction,
  // which Insert performs transparently.
  auto s = p.Insert(std::string(150, 'n'));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*p.Get(*s)).size(), 150u);
  // Survivors intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    ASSERT_TRUE(p.Get(slots[i]).ok());
    EXPECT_EQ((*p.Get(slots[i])).ToString(), rec);
  }
}

TEST(PageTest, UpdateTooBigFailsCleanly) {
  Page p;
  p.Init(1);
  auto s = p.Insert("small");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(p.Update(*s, std::string(kPageSize, 'x')).IsResourceExhausted());
  // Original record untouched by the failed update.
  EXPECT_EQ((*p.Get(*s)).ToString(), "small");
}

TEST(PageTest, RandomizedChurnAgainstModel) {
  Page p;
  p.Init(1);
  Rng rng(42);
  std::vector<std::pair<uint16_t, std::string>> model;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t op = rng.Uniform(3);
    if (op == 0 || model.empty()) {
      std::string rec = rng.AlphaString(1, 200);
      auto s = p.Insert(rec);
      if (s.ok()) model.emplace_back(*s, rec);
    } else if (op == 1) {
      const size_t i = rng.Uniform(model.size());
      ASSERT_TRUE(p.Delete(model[i].first).ok());
      model.erase(model.begin() + static_cast<long>(i));
    } else {
      const size_t i = rng.Uniform(model.size());
      std::string rec = rng.AlphaString(1, 200);
      Status st = p.Update(model[i].first, rec);
      if (st.ok()) model[i].second = rec;
    }
    ASSERT_EQ(p.live_records(), model.size());
  }
  for (auto& [slot, rec] : model) {
    ASSERT_TRUE(p.Get(slot).ok());
    ASSERT_EQ((*p.Get(slot)).ToString(), rec);
  }
}

// ---------------------------------------------------------------- SimDisk --

TEST(SimDiskTest, AllocReadWrite) {
  Simulator sim;
  sim::Link link(&sim, "ssd", 0.5, 20000);
  SimDisk disk(&sim, &link, "ssd0");
  PageId id = disk.AllocPage();
  EXPECT_TRUE(disk.Exists(id));
  EXPECT_FALSE(disk.Exists(id + 100));

  Page w;
  w.Init(id);
  ASSERT_TRUE(w.Insert("persisted").ok());
  Status wrote, read;
  Page r;
  sim.Spawn([](SimDisk* d, PageId id, Page* w, Page* r, Status* ws,
               Status* rs) -> Task<> {
    *ws = co_await d->WritePage(id, *w);
    *rs = co_await d->ReadPage(id, r);
  }(&disk, id, &w, &r, &wrote, &read));
  sim.Run();
  ASSERT_TRUE(wrote.ok());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*r.Get(0)).ToString(), "persisted");
  // Two page transfers at 0.5 GB/s (16.4us each) + 2x 20us latency.
  EXPECT_GT(sim.Now(), 2 * 20000);
}

TEST(SimDiskTest, ReadUnknownPageFails) {
  Simulator sim;
  sim::Link link(&sim, "d", 1.0, 100);
  SimDisk disk(&sim, &link, "d0");
  Page p;
  Status st;
  sim.Spawn([](SimDisk* d, Page* p, Status* st) -> Task<> {
    *st = co_await d->ReadPage(999, p);
  }(&disk, &p, &st));
  sim.Run();
  EXPECT_TRUE(st.IsNotFound());
}

TEST(SimDiskTest, InjectedErrorFiresOnce) {
  Simulator sim;
  sim::Link link(&sim, "d", 1.0, 100);
  SimDisk disk(&sim, &link, "d0");
  PageId id = disk.AllocPage();
  disk.InjectReadError(id);
  Status first, second;
  Page p;
  sim.Spawn([](SimDisk* d, PageId id, Page* p, Status* s1,
               Status* s2) -> Task<> {
    *s1 = co_await d->ReadPage(id, p);
    *s2 = co_await d->ReadPage(id, p);
  }(&disk, id, &p, &first, &second));
  sim.Run();
  EXPECT_TRUE(first.IsIOError());
  EXPECT_TRUE(second.ok());
}

// ------------------------------------------------------------- BufferPool --

TEST(BufferPoolTest, FetchCachesPage) {
  Simulator sim;
  sim::Link link(&sim, "d", 10.0, 1000);
  SimDisk disk(&sim, &link, "d0");
  PageId id = disk.AllocPage();
  BufferPool pool(&sim, &disk, 4);
  sim.Spawn([](BufferPool* bp, PageId id) -> Task<> {
    auto r1 = co_await bp->Fetch(id);
    EXPECT_TRUE(r1.ok());
    bp->Unpin(id, false);
    auto r2 = co_await bp->Fetch(id);  // hit
    EXPECT_TRUE(r2.ok());
    bp->Unpin(id, false);
  }(&pool, id));
  sim.Run();
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_TRUE(pool.IsCached(id));
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  Simulator sim;
  sim::Link link(&sim, "d", 10.0, 1000);
  SimDisk disk(&sim, &link, "d0");
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(disk.AllocPage());
  BufferPool pool(&sim, &disk, 2);
  sim.Spawn([](BufferPool* bp, std::vector<PageId>* ids) -> Task<> {
    // Dirty the first page, then churn through the rest to force eviction.
    {
      auto r = co_await bp->Fetch((*ids)[0]);
      EXPECT_TRUE(r.ok());
      EXPECT_TRUE((*r)->Insert("dirty data").ok());
      bp->Unpin((*ids)[0], true);
    }
    for (size_t i = 1; i < ids->size(); ++i) {
      auto r = co_await bp->Fetch((*ids)[i]);
      EXPECT_TRUE(r.ok());
      bp->Unpin((*ids)[i], false);
    }
    // Re-fetch page 0 from disk; the insert must have been written back.
    auto r = co_await bp->Fetch((*ids)[0]);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ((*(*r)->Get(0)).ToString(), "dirty data");
    bp->Unpin((*ids)[0], false);
  }(&pool, &ids));
  sim.Run();
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().dirty_writebacks, 0u);
}

TEST(BufferPoolTest, AllPinnedFailsFetch) {
  Simulator sim;
  sim::Link link(&sim, "d", 10.0, 1000);
  SimDisk disk(&sim, &link, "d0");
  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(disk.AllocPage());
  BufferPool pool(&sim, &disk, 2);
  Status st;
  sim.Spawn([](BufferPool* bp, std::vector<PageId>* ids, Status* out) -> Task<> {
    auto r1 = co_await bp->Fetch((*ids)[0]);
    EXPECT_TRUE(r1.ok());
    auto r2 = co_await bp->Fetch((*ids)[1]);
    EXPECT_TRUE(r2.ok());
    auto r3 = co_await bp->Fetch((*ids)[2]);  // no evictable frame
    *out = r3.status();
    bp->Unpin((*ids)[0], false);
    bp->Unpin((*ids)[1], false);
  }(&pool, &ids, &st));
  sim.Run();
  EXPECT_TRUE(st.IsResourceExhausted());
}

TEST(BufferPoolTest, NewPagePinsFreshPage) {
  Simulator sim;
  sim::Link link(&sim, "d", 10.0, 1000);
  SimDisk disk(&sim, &link, "d0");
  BufferPool pool(&sim, &disk, 4);
  sim.Spawn([](BufferPool* bp, SimDisk* disk) -> Task<> {
    auto r = co_await bp->NewPage();
    EXPECT_TRUE(r.ok());
    const PageId id = (*r)->page_id();
    EXPECT_TRUE(disk->Exists(id));
    EXPECT_EQ(bp->PinCount(id), 1);
    bp->Unpin(id, true);
  }(&pool, &disk));
  sim.Run();
}

TEST(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  Simulator sim;
  sim::Link link(&sim, "d", 10.0, 1000);
  SimDisk disk(&sim, &link, "d0");
  PageId id = disk.AllocPage();
  BufferPool pool(&sim, &disk, 4);
  sim.Spawn([](BufferPool* bp, SimDisk* disk, PageId id) -> Task<> {
    auto r = co_await bp->Fetch(id);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE((*r)->Insert("flushed").ok());
    bp->Unpin(id, true);
    EXPECT_TRUE((co_await bp->FlushAll()).ok());
    Page direct;
    EXPECT_TRUE(disk->ReadPageSync(id, &direct).ok());
    EXPECT_EQ((*direct.Get(0)).ToString(), "flushed");
  }(&pool, &disk, id));
  sim.Run();
}

// --------------------------------------------------------------- Columnar --

TEST(ColumnarTest, AppendAndAccess) {
  ColumnarTable t({"a", "b", "c"});
  t.AppendRow({1, 2, 3});
  t.AppendRow({4, 5, 6});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.At(1, 2), 6);
  EXPECT_EQ(*t.ColumnIndex("b"), 1u);
  EXPECT_TRUE(t.ColumnIndex("zzz").status().IsNotFound());
  EXPECT_EQ(t.SizeBytes(), 2u * 3u * 8u);
}

TEST(ColumnarTest, ScanWhereFiltersAndProjects) {
  ColumnarTable t({"id", "qty"});
  for (int64_t i = 0; i < 100; ++i) t.AppendRow({i, i * 10});
  auto rows = t.ScanWhere(0, [](int64_t v) { return v >= 95; }, {1});
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0], 950);
  EXPECT_EQ(t.CountWhere(1, [](int64_t v) { return v < 100; }), 10u);
}

TEST(ColumnarTest, SetUpdatesInPlace) {
  ColumnarTable t({"x"});
  t.AppendRow({1});
  t.Set(0, 0, 42);
  EXPECT_EQ(t.At(0, 0), 42);
}

}  // namespace
}  // namespace bionicdb::storage
