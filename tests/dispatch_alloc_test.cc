// Allocation regression test for the DORA dispatch cycle.
//
// Defines the counting operator-new hook for this binary and drives the
// same dispatch -> pop -> lock -> execute -> release cycle the wallclock
// bench measures: pooled actions, arena lock keys (SSO-sized), a reused
// Xct, and ring-backed queues. After a warmup that fills the action pool,
// the lock table, and the coroutine-frame freelists, the steady-state
// cycle must perform ZERO heap allocations.
//
// The obs tracer rides the same hot path, so its contract is enforced
// here too: a disabled tracer must not change the allocation story (each
// record site is one predicted branch), and an enabled tracer must record
// into its preallocated ring — still no steady-state allocations — and
// export byte-identical traces for identical runs.
//
// Sanitizer builds define BIONICDB_NO_FRAME_POOL (each coroutine frame is
// an individual heap allocation so ASan can track it); there the test
// still runs the cycle but only checks that allocations stay bounded.
#define BIONICDB_ALLOC_HOOK_DEFINE
#include "bench/alloc_hook.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dora/action.h"
#include "dora/executor.h"
#include "engine/engine.h"
#include "exec/threaded.h"
#include "hw/platform.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "txn/xct.h"

namespace bionicdb {
namespace {

sim::Task<void> DispatchCycles(sim::Simulator* sim, dora::Executor* ex,
                               uint64_t warmup, uint64_t measured,
                               const std::vector<std::string>* keys,
                               uint64_t* steady_allocs) {
  txn::Xct xct;
  for (uint64_t i = 0; i < warmup + measured; ++i) {
    if (i == warmup) *steady_allocs = bench::AllocCount();
    xct.id = i + 1;
    xct.priority = i + 1;
    dora::Rvp rvp(sim, 1);
    dora::Action* a = ex->AcquireAction();
    a->xct = &xct;
    a->rvp = &rvp;
    a->socket = 0;
    a->AddLockKey(Slice((*keys)[i % keys->size()]));
    a->fn = [](dora::ActionContext&) -> sim::Task<Status> {
      co_return Status::OK();
    };
    co_await ex->Dispatch(a);
    Status st = co_await rvp.Wait();
    BIONICDB_CHECK(st.ok());
    co_await ex->ReleaseTxnLocks(&xct);
  }
  *steady_allocs = bench::AllocCount() - *steady_allocs;
  co_await ex->Drain();
}

constexpr uint64_t kWarmup = 2000;
constexpr uint64_t kMeasured = 20000;

/// Runs the full warmup+measured dispatch cycle on a fresh simulator with
/// `tracer` attached to the platform (null = untraced). Returns the
/// steady-state allocation count.
uint64_t RunDispatchCycle(obs::Tracer* tracer) {
  sim::Simulator sim;
  hw::Platform platform(&sim, hw::PlatformSpec::CommodityServer(), nullptr,
                        tracer);
  hw::Breakdown bd;
  dora::ExecutorConfig ec;
  ec.num_partitions = 4;
  dora::Executor ex(&platform, ec, nullptr, &bd);
  ex.Start();

  // 64 distinct keys, all <= 15 bytes so held-lock bookkeeping stays in
  // std::string's SSO buffer.
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));

  uint64_t steady_allocs = 0;
  sim.Spawn(DispatchCycles(&sim, &ex, kWarmup, kMeasured, &keys,
                           &steady_allocs));
  sim.Run();
  BIONICDB_CHECK(ex.stats().executed == kWarmup + kMeasured);
  return steady_allocs;
}

void ExpectSteadyStateAllocFree(uint64_t steady_allocs) {
#ifdef BIONICDB_NO_FRAME_POOL
  // Frame pooling is compiled out: every co_await allocates a frame. Just
  // bound the per-cycle rate (each cycle awaits a handful of coroutines).
  EXPECT_LT(steady_allocs / kMeasured, 64u);
#else
  EXPECT_EQ(steady_allocs, 0u)
      << "steady-state dispatch performed " << steady_allocs
      << " heap allocations over " << kMeasured << " cycles";
#endif
}

TEST(DispatchAllocTest, SteadyStateCycleIsAllocationFree) {
  ExpectSteadyStateAllocFree(RunDispatchCycle(nullptr));
}

TEST(DispatchAllocTest, DisabledTracerStaysAllocationFree) {
  obs::Tracer tracer{obs::TraceConfig{}};  // enabled = false
  ASSERT_FALSE(tracer.enabled());
  ExpectSteadyStateAllocFree(RunDispatchCycle(&tracer));
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

// The threaded backend's dispatch cycle — freelist acquire, arena lock
// keys, MPSC mailbox push, agent-side lock/execute, release latch — must
// be equally allocation-free once the pool, the lock tables, and each
// agent thread's coroutine-frame pool have warmed up. The reused Xct
// mirrors the simulated cycle above (Execute's per-transaction Xct owns
// growing vectors by design; the dispatch layer underneath it is what is
// pinned here).
TEST(DispatchAllocTest, ThreadedSteadyStateCycleIsAllocationFree) {
  sim::Simulator sim;
  engine::EngineConfig cfg = engine::EngineConfig::Dora();
  cfg.num_partitions = 4;
  engine::Engine engine(&sim, cfg);
  exec::ThreadedBackend backend(&engine, exec::ThreadedBackend::Config{});
  backend.Start();

  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));

  txn::Xct xct;
  uint64_t steady = 0;
  for (uint64_t i = 0; i < kWarmup + kMeasured; ++i) {
    if (i == kWarmup) steady = bench::AllocCount();
    xct.id = i + 1;
    xct.priority = i + 1;
    exec::ThreadedRvp rvp(1);
    dora::Action* a = backend.AcquireAction();
    a->xct = &xct;
    a->trvp = &rvp;
    a->socket = 0;
    a->AddLockKey(Slice(keys[i % keys.size()]));
    a->fn = [](dora::ActionContext&) -> sim::Task<Status> {
      co_return Status::OK();
    };
    backend.Dispatch(a);
    Status st = rvp.Wait();
    BIONICDB_CHECK(st.ok());
    backend.ReleaseTxnLocks(&xct);
  }
  steady = bench::AllocCount() - steady;
  EXPECT_EQ(backend.stats().actions_executed, kWarmup + kMeasured);
  const size_t allocated = backend.actions_allocated();
  backend.Shutdown();
  ExpectSteadyStateAllocFree(steady);
  // The pool stopped growing after warmup (one action in flight at a time).
  EXPECT_LE(allocated, 4u);
}

TEST(DispatchAllocTest, EnabledTracerRecordsIntoRingAndIsDeterministic) {
  obs::TraceConfig cfg;
  cfg.enabled = true;
  auto traced_run = [&](std::string* json) {
    obs::Tracer tracer(cfg);
    const uint64_t steady = RunDispatchCycle(&tracer);
    EXPECT_GE(tracer.total_recorded(), kMeasured);
    *json = tracer.ExportChromeTrace();
    return steady;
  };
  std::string first, second;
  // The ring is preallocated at construction, so even the *enabled* path
  // adds no steady-state allocations.
  ExpectSteadyStateAllocFree(traced_run(&first));
  traced_run(&second);
  // Identical runs (virtual time only, no wall-clock leakage) must export
  // byte-identical traces.
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace bionicdb
