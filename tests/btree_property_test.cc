// Randomized property test: the B+Tree against a std::map oracle.
//
// Drives long random sequences of insert / overwrite / update / delete /
// point-get / range-iterate at both a degenerate fanout (4, maximizing
// structure-modification operations) and the production fanout (64,
// exercising the flat node layout's binary search over wide nodes), and
// checks every answer — and the structural invariants — against the oracle.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/btree.h"
#include "index/codec.h"

namespace bionicdb {
namespace {

using index::BTree;
using index::BTreeConfig;
using index::EncodeKeyU64;

struct FanoutParam {
  int fanout;
};

class BTreePropertyTest : public ::testing::TestWithParam<FanoutParam> {};

std::string OracleValue(uint64_t key, uint64_t version) {
  // Variable-length values (0..~120 bytes) so leaf arenas see reuse,
  // growth, and compaction, not just fixed-size slots.
  std::string v = "v" + std::to_string(key) + ":" + std::to_string(version);
  v.append(version % 120, 'x');
  return v;
}

TEST_P(BTreePropertyTest, RandomOpsMatchMapOracle) {
  BTreeConfig cfg;
  cfg.inner_fanout = GetParam().fanout;
  cfg.leaf_capacity = GetParam().fanout;
  BTree tree(cfg);
  std::map<std::string, std::string> oracle;

  Rng rng(20260805 + static_cast<uint64_t>(GetParam().fanout));
  const uint64_t kKeySpace = 2000;
  const int kOps = 30000;
  uint64_t version = 0;

  for (int op = 0; op < kOps; ++op) {
    const uint64_t k = rng.Uniform(kKeySpace);
    const std::string key = EncodeKeyU64(k);
    switch (rng.Uniform(6)) {
      case 0:    // insert (no overwrite): must fail iff present
      case 1: {
        const std::string val = OracleValue(k, ++version);
        Status st = tree.Insert(key, val, /*overwrite=*/false);
        if (oracle.count(key)) {
          ASSERT_FALSE(st.ok()) << "insert succeeded over existing key " << k;
        } else {
          ASSERT_TRUE(st.ok()) << st.ToString();
          oracle[key] = val;
        }
        break;
      }
      case 2: {  // upsert
        const std::string val = OracleValue(k, ++version);
        ASSERT_TRUE(tree.Insert(key, val, /*overwrite=*/true).ok());
        oracle[key] = val;
        break;
      }
      case 3: {  // update: must fail iff absent
        const std::string val = OracleValue(k, ++version);
        Status st = tree.Update(key, val);
        if (oracle.count(key)) {
          ASSERT_TRUE(st.ok()) << st.ToString();
          oracle[key] = val;
        } else {
          ASSERT_FALSE(st.ok()) << "update succeeded for missing key " << k;
        }
        break;
      }
      case 4: {  // delete: must fail iff absent
        Status st = tree.Delete(key);
        if (oracle.count(key)) {
          ASSERT_TRUE(st.ok()) << st.ToString();
          oracle.erase(key);
        } else {
          ASSERT_FALSE(st.ok()) << "delete succeeded for missing key " << k;
        }
        break;
      }
      default: {  // point get, owning and view flavors
        auto r = tree.Get(key);
        auto view = tree.GetView(key);
        auto it = oracle.find(key);
        if (it == oracle.end()) {
          ASSERT_FALSE(r.ok());
          ASSERT_FALSE(view.ok());
        } else {
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          ASSERT_EQ(*r, it->second);
          ASSERT_TRUE(view.ok()) << view.status().ToString();
          ASSERT_EQ(view->ToString(), it->second);
        }
        break;
      }
    }

    ASSERT_EQ(tree.size(), oracle.size());

    // Periodically: full structural check + ordered scan vs the oracle.
    if (op % 2500 == 2499) {
      Status inv = tree.CheckInvariants();
      ASSERT_TRUE(inv.ok()) << inv.ToString();
      auto it = oracle.begin();
      size_t seen = 0;
      for (auto ti = tree.Begin(); ti.Valid(); ti.Next(), ++it, ++seen) {
        ASSERT_NE(it, oracle.end());
        ASSERT_EQ(ti.key().ToString(), it->first);
        ASSERT_EQ(ti.value().ToString(), it->second);
      }
      ASSERT_EQ(seen, oracle.size());

      // Bounded range over a random window.
      const uint64_t lo = rng.Uniform(kKeySpace);
      const uint64_t hi = lo + rng.Uniform(kKeySpace - lo + 1);
      const std::string lo_k = EncodeKeyU64(lo), hi_k = EncodeKeyU64(hi);
      auto oit = oracle.lower_bound(lo_k);
      for (auto ti = tree.SeekRange(lo_k, hi_k); ti.Valid(); ti.Next(), ++oit) {
        ASSERT_NE(oit, oracle.end());
        ASSERT_LT(oit->first, hi_k);
        ASSERT_EQ(ti.key().ToString(), oit->first);
        ASSERT_EQ(ti.value().ToString(), oit->second);
      }
      ASSERT_TRUE(oit == oracle.end() || oit->first >= hi_k);
    }
  }

  // Drain everything through Delete and confirm the tree empties cleanly.
  while (!oracle.empty()) {
    auto it = oracle.begin();
    ASSERT_TRUE(tree.Delete(it->first).ok());
    oracle.erase(it);
  }
  ASSERT_TRUE(tree.empty());
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreePropertyTest,
                         ::testing::Values(FanoutParam{4}, FanoutParam{64}),
                         [](const auto& info) {
                           return "Fanout" +
                                  std::to_string(info.param.fanout);
                         });

}  // namespace
}  // namespace bionicdb
