// Integration tests for the Engine facade: CRUD through all three
// architectures, overlay behaviour, transactions with commit/abort,
// DORA phases, analytics, bulk merge, and end-to-end crash recovery.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "index/codec.h"
#include "sim/simulator.h"
#include "wal/recovery.h"

namespace bionicdb::engine {
namespace {

using index::EncodeKeyU64;
using sim::Simulator;
using sim::Task;

struct Fixture {
  explicit Fixture(EngineConfig config) : engine(&sim, config) {}

  Simulator sim;
  Engine engine;
};

EngineConfig SmallBionic() {
  EngineConfig c = EngineConfig::Bionic();
  c.num_partitions = 4;
  return c;
}

EngineConfig SmallDora() {
  EngineConfig c = EngineConfig::Dora();
  c.num_partitions = 4;
  return c;
}

/// Runs `body` as a simulated task and drives the sim to completion,
/// starting/draining agents around it.
void RunInEngine(Fixture* f, std::function<Task<void>()> body) {
  f->engine.Start();
  f->sim.Spawn([](Fixture* f, std::function<Task<void>()> body) -> Task<> {
    co_await body();
    co_await f->engine.Shutdown();
  }(f, std::move(body)));
  f->sim.Run();
}

Engine::TxnSpec SingleStepTxn(Engine* eng, Table* table,
                              const std::string& key,
                              std::function<sim::Task<Status>(
                                  Engine::ExecContext&)> fn,
                              bool read_only = false) {
  Engine::TxnSpec spec;
  Engine::TxnStep step;
  step.table = table;
  step.keys = {key};
  step.read_only = read_only;
  step.fn = std::move(fn);
  spec.phases.push_back({std::move(step)});
  return spec;
}

// ------------------------------------------------ basic txns in all modes --

class EngineModeTest : public ::testing::TestWithParam<EngineMode> {};

EngineConfig ConfigFor(EngineMode mode) {
  switch (mode) {
    case EngineMode::kConventional:
      return EngineConfig::Conventional();
    case EngineMode::kDora:
      return SmallDora();
    case EngineMode::kBionic:
      return SmallBionic();
  }
  return EngineConfig::Dora();
}

TEST_P(EngineModeTest, ReadYourLoad) {
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(1), "row-one").ok());
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(2), "row-two").ok());

  std::string got;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(1),
        [eng, t, &got](Engine::ExecContext& ctx) -> sim::Task<Status> {
          auto r = co_await eng->Read(ctx, t, EncodeKeyU64(1));
          if (!r.ok()) co_return r.status();
          got = *r;
          co_return Status::OK();
        },
        /*read_only=*/true));
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  EXPECT_EQ(got, "row-one");
  EXPECT_EQ(f.engine.metrics().commits, 1u);
}

TEST_P(EngineModeTest, UpdateIsVisibleAfterCommit) {
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(5), "before").ok());

  std::string after;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(5),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return co_await eng->Update(ctx, t, EncodeKeyU64(5), "after");
        }));
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(5),
        [eng, t, &after](Engine::ExecContext& ctx) -> sim::Task<Status> {
          auto r = co_await eng->Read(ctx, t, EncodeKeyU64(5));
          if (!r.ok()) co_return r.status();
          after = *r;
          co_return Status::OK();
        },
        true));
    EXPECT_TRUE(st.ok());
  });
  EXPECT_EQ(after, "after");
  // The update transaction must have reached the log durably.
  EXPECT_GT(f.engine.log()->durable_lsn(), 0u);
}

TEST_P(EngineModeTest, InsertAndDelete) {
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(1), "x").ok());

  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(99),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return co_await eng->Insert(ctx, t, EncodeKeyU64(99), "fresh");
        }));
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(99),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          auto r = co_await eng->Read(ctx, t, EncodeKeyU64(99));
          EXPECT_TRUE(r.ok());
          EXPECT_EQ(*r, "fresh");
          co_return co_await eng->Delete(ctx, t, EncodeKeyU64(99));
        }));
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(99),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          auto r = co_await eng->Read(ctx, t, EncodeKeyU64(99));
          EXPECT_TRUE(r.status().IsNotFound());
          co_return Status::OK();
        },
        true));
    EXPECT_TRUE(st.ok());
  });
  EXPECT_EQ(f.engine.metrics().commits, 3u);
}

TEST_P(EngineModeTest, FailedStepAbortsAndRollsBack) {
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(7), "original").ok());

  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    // Update succeeds, then the step fails: the update must be undone.
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(7),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          Status st =
              co_await eng->Update(ctx, t, EncodeKeyU64(7), "tainted");
          EXPECT_TRUE(st.ok());
          co_return Status::Aborted("forced failure");
        }));
    EXPECT_TRUE(st.IsAborted());
    std::string now;
    st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(7),
        [eng, t, &now](Engine::ExecContext& ctx) -> sim::Task<Status> {
          auto r = co_await eng->Read(ctx, t, EncodeKeyU64(7));
          if (!r.ok()) co_return r.status();
          now = *r;
          co_return Status::OK();
        },
        true));
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(now, "original");
  });
  EXPECT_EQ(f.engine.metrics().aborts, 1u);
  EXPECT_EQ(f.engine.metrics().commits, 1u);
}

TEST_P(EngineModeTest, MultiPhaseTxnWithSharedState) {
  Fixture f(ConfigFor(GetParam()));
  Table* a = f.engine.CreateTable("A");
  Table* b = f.engine.CreateTable("B");
  ASSERT_TRUE(f.engine.LoadRow(a, EncodeKeyU64(1), EncodeKeyU64(42)).ok());
  ASSERT_TRUE(f.engine.LoadRow(b, EncodeKeyU64(42), "target").ok());

  std::string found;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    auto state = std::make_shared<std::string>();
    Engine::TxnSpec spec;
    {
      Engine::TxnStep s1;
      s1.table = a;
      s1.keys = {EncodeKeyU64(1)};
      s1.read_only = true;
      s1.fn = [eng, a, state](Engine::ExecContext& ctx) -> sim::Task<Status> {
        auto r = co_await eng->Read(ctx, a, EncodeKeyU64(1));
        if (!r.ok()) co_return r.status();
        *state = *r;  // the key into table B
        co_return Status::OK();
      };
      spec.phases.push_back({std::move(s1)});
    }
    {
      Engine::TxnStep s2;
      s2.table = b;
      s2.keys = {EncodeKeyU64(42)};
      s2.read_only = true;
      s2.fn = [eng, b, state,
               &found](Engine::ExecContext& ctx) -> sim::Task<Status> {
        auto r = co_await eng->Read(ctx, b, *state);
        if (!r.ok()) co_return r.status();
        found = *r;
        co_return Status::OK();
      };
      spec.phases.push_back({std::move(s2)});
    }
    Status st = co_await eng->Execute(std::move(spec));
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  EXPECT_EQ(found, "target");
}

TEST_P(EngineModeTest, RangeReadReturnsSortedWindow) {
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        f.engine.LoadRow(t, EncodeKeyU64(i), "v" + std::to_string(i)).ok());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(10),
        [eng, t, &rows](Engine::ExecContext& ctx) -> sim::Task<Status> {
          auto r = co_await eng->RangeRead(ctx, t, EncodeKeyU64(10),
                                           EncodeKeyU64(20), 0);
          if (!r.ok()) co_return r.status();
          rows = *r;
          co_return Status::OK();
        },
        true));
    EXPECT_TRUE(st.ok());
  });
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows.front().second, "v10");
  EXPECT_EQ(rows.back().second, "v19");
}

TEST_P(EngineModeTest, ScanCountMatchesPredicate) {
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(f.engine
                    .LoadRow(t, EncodeKeyU64(i),
                             i % 10 == 0 ? "match" : "nomatch")
                    .ok());
  }
  uint64_t count = 0;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Engine::ExecContext ctx;
    ctx.engine = eng;
    auto r = co_await eng->ScanCount(
        ctx, t, [](Slice rec) { return rec == Slice("match"); });
    EXPECT_TRUE(r.ok());
    count = *r;
  });
  EXPECT_EQ(count, 50u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, EngineModeTest,
                         ::testing::Values(EngineMode::kConventional,
                                           EngineMode::kDora,
                                           EngineMode::kBionic),
                         [](const ::testing::TestParamInfo<EngineMode>& info) {
                           return EngineModeName(info.param);
                         });

// ------------------------------------------------------- overlay specifics --

TEST(OverlayEngineTest, NonResidentReadFetchesAndInstalls) {
  EngineConfig config = SmallBionic();
  config.overlay_residency = 0.0;  // nothing resident: every read misses
  Fixture f(config);
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(1), "cold-row").ok());
  ASSERT_EQ(t->overlay()->entries(), 0u);

  std::string got;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(1),
        [eng, t, &got](Engine::ExecContext& ctx) -> sim::Task<Status> {
          auto r = co_await eng->Read(ctx, t, EncodeKeyU64(1));
          if (!r.ok()) co_return r.status();
          got = *r;
          co_return Status::OK();
        },
        true));
    EXPECT_TRUE(st.ok());
  });
  EXPECT_EQ(got, "cold-row");
  EXPECT_EQ(t->overlay()->stats().misses, 1u);
  EXPECT_EQ(t->overlay()->stats().installs, 1u);
  EXPECT_EQ(t->overlay()->entries(), 1u);  // now cached
}

TEST(OverlayEngineTest, BulkMergePushesDirtyRowsToBase) {
  Fixture f(SmallBionic());
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(1), "old").ok());

  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(1),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return co_await eng->Update(ctx, t, EncodeKeyU64(1), "new");
        }));
    EXPECT_TRUE(st.ok());
    // Before the merge the base still has the old version.
    EXPECT_EQ(*t->BaseGet(EncodeKeyU64(1)), "old");
    EXPECT_EQ(t->overlay()->dirty_count(), 1u);
    Engine::ExecContext ctx;
    ctx.engine = eng;
    st = co_await eng->BulkMerge(ctx, t);
    EXPECT_TRUE(st.ok());
  });
  EXPECT_EQ(t->overlay()->dirty_count(), 0u);
  EXPECT_EQ(*t->BaseGet(EncodeKeyU64(1)), "new");
}

TEST(OverlayEngineTest, QueriesSeeUnmergedUpdates) {
  // §5.6: the overlay "will also patch updates into historical data
  // requested by queries".
  Fixture f(SmallBionic());
  Table* t = f.engine.CreateTable("T");
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(i), "stale").ok());
  }
  uint64_t fresh_count = 0;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(3),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return co_await eng->Update(ctx, t, EncodeKeyU64(3), "fresh");
        }));
    EXPECT_TRUE(st.ok());
    Engine::ExecContext ctx;
    ctx.engine = eng;
    auto r = co_await eng->ScanCount(
        ctx, t, [](Slice rec) { return rec == Slice("fresh"); });
    EXPECT_TRUE(r.ok());
    fresh_count = *r;
  });
  EXPECT_EQ(fresh_count, 1u);  // without the patch this would be 0
}

// ---------------------------------------------------------------- recovery --

/// Recovery target applying redo into a table's base storage.
class TableTarget : public wal::RecoveryTarget {
 public:
  explicit TableTarget(Database* db) : db_(db) {}
  void RedoInsert(uint32_t table, Slice key, Slice value) override {
    BIONICDB_CHECK(db_->GetTable(table)->BasePut(key, value).ok());
  }
  void RedoUpdate(uint32_t table, Slice key, Slice value) override {
    BIONICDB_CHECK(db_->GetTable(table)->BasePut(key, value).ok());
  }
  void RedoDelete(uint32_t table, Slice key) override {
    (void)db_->GetTable(table)->BaseDelete(key);
  }

 private:
  Database* db_;
};

TEST(EngineRecoveryTest, CrashLosesNothingCommitted) {
  // Run committed + aborted transactions on engine A, then replay A's
  // durable log into a fresh engine B loaded with the original data.
  EngineConfig config = SmallDora();
  Fixture a(config);
  Table* ta = a.engine.CreateTable("T");
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(a.engine.LoadRow(ta, EncodeKeyU64(i), "init").ok());
  }
  RunInEngine(&a, [&]() -> Task<> {
    Engine* eng = &a.engine;
    // Committed update.
    Status st = co_await eng->Execute(SingleStepTxn(
        eng, ta, EncodeKeyU64(1),
        [eng, ta](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return co_await eng->Update(ctx, ta, EncodeKeyU64(1),
                                         "committed");
        }));
    EXPECT_TRUE(st.ok());
    // Aborted update.
    st = co_await eng->Execute(SingleStepTxn(
        eng, ta, EncodeKeyU64(2),
        [eng, ta](Engine::ExecContext& ctx) -> sim::Task<Status> {
          Status st =
              co_await eng->Update(ctx, ta, EncodeKeyU64(2), "aborted");
          EXPECT_TRUE(st.ok());
          co_return Status::Aborted("crash before commit");
        }));
    EXPECT_TRUE(st.IsAborted());
    // Committed insert.
    st = co_await eng->Execute(SingleStepTxn(
        eng, ta, EncodeKeyU64(100),
        [eng, ta](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return co_await eng->Insert(ctx, ta, EncodeKeyU64(100),
                                         "inserted");
        }));
    EXPECT_TRUE(st.ok());
  });

  // "Crash": rebuild from the original load + the durable log prefix.
  Fixture b(config);
  Table* tb = b.engine.CreateTable("T");
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.engine.LoadRow(tb, EncodeKeyU64(i), "init").ok());
  }
  TableTarget target(&b.engine.db());
  wal::RecoveryStats stats;
  ASSERT_TRUE(
      wal::Recover(a.engine.log()->durable_prefix(), &target, &stats).ok());

  EXPECT_EQ(*tb->BaseGet(EncodeKeyU64(1)), "committed");
  EXPECT_EQ(*tb->BaseGet(EncodeKeyU64(2)), "init");  // aborted txn invisible
  EXPECT_EQ(*tb->BaseGet(EncodeKeyU64(100)), "inserted");
  EXPECT_GE(stats.committed_txns, 2u);
  EXPECT_GE(stats.loser_txns, 1u);
}

// ---------------------------------------------------- breakdown & energy --

TEST(EngineTelemetryTest, BreakdownCoversAllMajorComponents) {
  Fixture f(SmallDora());
  Table* t = f.engine.CreateTable("T");
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(i), "value").ok());
  }
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    for (uint64_t i = 0; i < 50; ++i) {
      Status st = co_await eng->Execute(SingleStepTxn(
          eng, t, EncodeKeyU64(i % 200),
          [eng, t, i](Engine::ExecContext& ctx) -> sim::Task<Status> {
            co_return co_await eng->Update(ctx, t, EncodeKeyU64(i % 200),
                                           "updated");
          }));
      EXPECT_TRUE(st.ok());
    }
    eng->FinishRun();
  });
  const hw::Breakdown& b = f.engine.breakdown();
  EXPECT_GT(b.ns(hw::Component::kBtree), 0);
  EXPECT_GT(b.ns(hw::Component::kBpool), 0);
  EXPECT_GT(b.ns(hw::Component::kLog), 0);
  EXPECT_GT(b.ns(hw::Component::kXct), 0);
  EXPECT_GT(b.ns(hw::Component::kDora), 0);
  EXPECT_GT(b.ns(hw::Component::kFrontend), 0);
  EXPECT_GT(f.engine.metrics().joules, 0.0);
  EXPECT_GT(f.engine.metrics().TxnPerSecond(), 0.0);
}

TEST(EngineTelemetryTest, ResetStatsZeroesWindow) {
  Fixture f(SmallDora());
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(1), "v").ok());
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    (void)co_await eng->Execute(SingleStepTxn(
        eng, t, EncodeKeyU64(1),
        [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
          co_return (co_await eng->Read(ctx, t, EncodeKeyU64(1))).status();
        },
        true));
    eng->ResetStats();
  });
  EXPECT_EQ(f.engine.metrics().commits, 0u);
  // Agents may charge a few idle polls between the reset and the drain;
  // anything beyond that means the window did not reset.
  EXPECT_LT(f.engine.breakdown().TotalNs(), 2000);
}

}  // namespace
}  // namespace bionicdb::engine

namespace bionicdb::engine {
namespace {

// ----------------------------------------------- MultiRead & known_old --

class MultiReadTest : public ::testing::TestWithParam<EngineMode> {};

TEST_P(MultiReadTest, ResultsAlignWithKeys) {
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        f.engine.LoadRow(t, EncodeKeyU64(i), "v" + std::to_string(i)).ok());
  }
  std::vector<Result<std::string>> results;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Engine::TxnSpec spec;
    Engine::TxnStep step;
    step.table = t;
    step.read_only = true;
    std::vector<std::string> keys = {EncodeKeyU64(5), EncodeKeyU64(999),
                                     EncodeKeyU64(32), EncodeKeyU64(0)};
    step.keys = keys;
    step.fn = [eng, t, keys,
               &results](Engine::ExecContext& ctx) -> sim::Task<Status> {
      results = co_await eng->MultiRead(ctx, t, keys);
      co_return Status::OK();
    };
    spec.phases.push_back({std::move(step)});
    EXPECT_TRUE((co_await eng->Execute(std::move(spec))).ok());
  });
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(*results[0], "v5");
  EXPECT_TRUE(results[1].status().IsNotFound());  // key 999 absent
  EXPECT_EQ(*results[2], "v32");
  EXPECT_EQ(*results[3], "v0");
}

TEST_P(MultiReadTest, HardwareProbesOverlap) {
  // In bionic mode a 10-key volley should take far less than 10 serial
  // host probes (requests overlap in the unit's contexts).
  Fixture f(ConfigFor(GetParam()));
  Table* t = f.engine.CreateTable("T");
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(i), "v").ok());
  }
  SimTime elapsed = 0;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Engine::TxnSpec spec;
    Engine::TxnStep step;
    step.table = t;
    step.read_only = true;
    std::vector<std::string> keys;
    for (uint64_t i = 0; i < 10; ++i) keys.push_back(EncodeKeyU64(i * 97));
    step.keys = keys;
    step.fn = [eng, t, keys,
               &elapsed](Engine::ExecContext& ctx) -> sim::Task<Status> {
      const SimTime t0 = eng->simulator()->Now();
      auto rs = co_await eng->MultiRead(ctx, t, keys);
      elapsed = eng->simulator()->Now() - t0;
      for (auto& r : rs) EXPECT_TRUE(r.ok());
      co_return Status::OK();
    };
    spec.phases.push_back({std::move(step)});
    EXPECT_TRUE((co_await eng->Execute(std::move(spec))).ok());
  });
  if (GetParam() == EngineMode::kBionic) {
    // One hw probe ~ 2us PCIe RT + ~0.9us tree walk; 10 serial ~ 30us.
    // Overlapped they fit well under half that.
    EXPECT_LT(elapsed, 15000);
  }
  EXPECT_GT(elapsed, 0);
}

INSTANTIATE_TEST_SUITE_P(AllModes, MultiReadTest,
                         ::testing::Values(EngineMode::kConventional,
                                           EngineMode::kDora,
                                           EngineMode::kBionic),
                         [](const ::testing::TestParamInfo<EngineMode>& info) {
                           return EngineModeName(info.param);
                         });

TEST(KnownOldTest, UpdateSkipsReprobeAndStillLogsUndo) {
  Fixture f(SmallDora());
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(1), "old-value").ok());
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Engine::TxnSpec spec;
    Engine::TxnStep step;
    step.table = t;
    step.keys = {EncodeKeyU64(1)};
    step.fn = [eng, t](Engine::ExecContext& ctx) -> sim::Task<Status> {
      auto r = co_await eng->ReadView(ctx, t, EncodeKeyU64(1));
      EXPECT_TRUE(r.ok());
      const SimTime btree_before = eng->breakdown().ns(hw::Component::kBtree);
      Status st =
          co_await eng->Update(ctx, t, EncodeKeyU64(1), "new-value", &*r);
      EXPECT_TRUE(st.ok());
      // No probe cost charged for the update itself (the located row is
      // reused; only the functional rid lookup remains).
      EXPECT_EQ(eng->breakdown().ns(hw::Component::kBtree), btree_before);
      // The before-image must still reach the log (it feeds abort + CLRs).
      EXPECT_FALSE(ctx.xct->undo_chain.empty());
      EXPECT_EQ(ctx.xct->undo_chain.back().before, "old-value");
      co_return Status::Aborted("force rollback");
    };
    spec.phases.push_back({std::move(step)});
    Status st = co_await eng->Execute(std::move(spec));
    EXPECT_TRUE(st.IsAborted());
  });
  // Rollback used the known_old before-image.
  EXPECT_EQ(*t->BaseGet(EncodeKeyU64(1)), "old-value");
}

// -------------------------------------------------------- RangeReadIndex --

TEST(RangeReadIndexTest, ReturnsOrderedSecondaryEntries) {
  Fixture f(SmallDora());
  Table* t = f.engine.CreateTable("T");
  ASSERT_TRUE(t->AddSecondaryIndex("by_group").ok());
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(f.engine.LoadRow(t, EncodeKeyU64(i), "r").ok());
    // Group g = i % 3; secondary key (g, i) -> primary key.
    ASSERT_TRUE(t->LoadSecondaryEntry(
                     "by_group", index::EncodeKeyU64Pair(i % 3, i),
                     EncodeKeyU64(i))
                    .ok());
  }
  std::vector<std::pair<std::string, std::string>> rows;
  RunInEngine(&f, [&]() -> Task<> {
    Engine* eng = &f.engine;
    Engine::ExecContext ctx;
    ctx.engine = eng;
    auto r = co_await eng->RangeReadIndex(
        ctx, t, "by_group", index::EncodeKeyU64Pair(1, 0),
        index::EncodeKeyU64Pair(2, 0), 0);
    EXPECT_TRUE(r.ok());
    rows = *r;
  });
  ASSERT_EQ(rows.size(), 10u);  // keys 1, 4, 7, ... 28
  EXPECT_EQ(index::DecodeKeyU64(Slice(rows.front().second)), 1u);
  EXPECT_EQ(index::DecodeKeyU64(Slice(rows.back().second)), 28u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first);
  }
}

}  // namespace
}  // namespace bionicdb::engine
